// Package deploy reproduces the six-home deployment study of §6: a PoWiFi
// router replaces each home's router for 24 hours while the occupants use
// it normally, with per-channel occupancy logged at 60-second resolution
// (Fig. 14, Table 1) and a battery-free temperature sensor placed ten feet
// away (Fig. 15).
//
// Running a packet-level simulation for six full days of wall-clock time
// is wasteful: occupancy at 60 s resolution is statistically stationary
// within a bin. The runner therefore samples each bin with a short
// packet-level window (default one simulated second) under that bin's
// diurnally-modulated client and neighbor load, and carries the measured
// occupancy into the energy model. DESIGN.md documents this substitution.
package deploy

import (
	"fmt"
	"iter"
	"math"
	"time"

	"repro/internal/phy"
)

// HomeConfig describes one deployment home (Table 1). The JSON tags
// are part of the public scenario schema (powifi.LoadScenario).
type HomeConfig struct {
	// ID is the home number (1-6).
	ID int `json:"id,omitempty"`
	// Users and Devices are the occupants and their Wi-Fi devices.
	Users   int `json:"users"`
	Devices int `json:"devices"`
	// NeighborAPs counts other 2.4 GHz routers in range.
	NeighborAPs int `json:"neighbor_aps"`
	// Weekend marks the two homes staged over a weekend.
	Weekend bool `json:"weekend,omitempty"`
	// StartHour is the local hour the 24 h log begins at (Fig. 14's
	// x-axes differ per home).
	StartHour int `json:"start_hour,omitempty"`
	// Seed drives the home's randomness.
	Seed uint64 `json:"seed,omitempty"`
}

// PaperHomes returns the six homes of Table 1. Homes 1 and 2 were staged
// over a weekend, the rest on weekdays; start hours follow Fig. 14.
func PaperHomes() []HomeConfig {
	return []HomeConfig{
		{ID: 1, Users: 2, Devices: 6, NeighborAPs: 17, Weekend: true, StartHour: 20, Seed: 101},
		{ID: 2, Users: 1, Devices: 1, NeighborAPs: 4, Weekend: true, StartHour: 16, Seed: 102},
		{ID: 3, Users: 3, Devices: 6, NeighborAPs: 10, StartHour: 16, Seed: 103},
		{ID: 4, Users: 2, Devices: 4, NeighborAPs: 15, StartHour: 20, Seed: 104},
		{ID: 5, Users: 1, Devices: 2, NeighborAPs: 24, StartHour: 0, Seed: 105},
		{ID: 6, Users: 3, Devices: 6, NeighborAPs: 16, StartHour: 20, Seed: 106},
	}
}

// Options controls the deployment runner's fidelity/cost trade-off.
type Options struct {
	// BinWidth is the occupancy logging resolution (60 s in the paper).
	BinWidth time.Duration
	// Window is the packet-level sample simulated per bin.
	Window time.Duration
	// Hours is the deployment duration (24 in the paper).
	Hours float64
	// SensorDistanceFt places the Fig. 15 sensor (10 ft in the paper).
	SensorDistanceFt float64
	// Exact forces the sensor's per-bin rectifier solve onto the direct
	// operating-point solver instead of the error-bounded interpolation
	// surface. The surface path is the default: same boot decisions,
	// harvested power within its certified ε, and a far cheaper bin.
	Exact bool
}

// DefaultOptions returns the paper's logging setup with a one-second
// sampling window per bin.
func DefaultOptions() Options {
	return Options{
		BinWidth:         time.Minute,
		Window:           time.Second,
		Hours:            24,
		SensorDistanceFt: 10,
	}
}

// withDefaults fills unset timing/placement fields individually, so
// fields with meaningful zero values (Exact, and whatever comes next)
// survive a partially specified Options.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BinWidth == 0 {
		o.BinWidth = d.BinWidth
	}
	if o.Window == 0 {
		o.Window = d.Window
	}
	if o.Hours == 0 {
		o.Hours = d.Hours
	}
	if o.SensorDistanceFt == 0 {
		o.SensorDistanceFt = d.SensorDistanceFt
	}
	return o
}

// Resolved returns the options with unset fields filled from
// DefaultOptions — what a run with o actually simulates. The facade
// uses it to echo resolved timings into its report.
func (o Options) Resolved() Options { return o.withDefaults() }

// NumBins returns the number of whole logging bins the deployment
// spans — the single source of truth for every layer that needs it.
// The epsilon absorbs float rounding when Hours was itself derived
// from a bin count (the fleet layer's duration snapping), so a
// snapped duration always round-trips to the same bin count.
func (o Options) NumBins() int {
	return int(o.Hours*float64(time.Hour)/float64(o.BinWidth) + 1e-9)
}

// Result is one home's deployment log.
type Result struct {
	Home     HomeConfig
	BinWidth time.Duration
	// Occupancy holds per-bin router occupancy percentages per channel.
	Occupancy map[phy.Channel][]float64
	// Cumulative is the per-bin sum across channels (may exceed 100).
	Cumulative []float64
	// SensorRates is the battery-free temperature sensor's per-bin update
	// rate (reads/s) at the configured distance.
	SensorRates []float64
	// HourOfDay maps each bin to its local time.
	HourOfDay []float64
}

// MeanCumulative returns the mean cumulative occupancy percentage, the
// number the paper reports as 78-127% across homes.
func (r *Result) MeanCumulative() float64 {
	if len(r.Cumulative) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.Cumulative {
		sum += v
	}
	return sum / float64(len(r.Cumulative))
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("home %d: %d bins, mean cumulative occupancy %.1f%%",
		r.Home.ID, len(r.Cumulative), r.MeanCumulative())
}

// activity returns the diurnal activity level in [0, 1] for a local hour.
// Weekday evenings peak after work; weekends spread usage through the day.
func activity(hour float64, weekend bool) float64 {
	h := math.Mod(hour, 24)
	var a float64
	switch {
	case h < 6:
		a = 0.08
	case h < 8:
		a = 0.30
	case h < 17:
		if weekend {
			a = 0.55
		} else {
			a = 0.25
		}
	case h < 19:
		a = 0.60
	case h < 23:
		a = 1.00
	default:
		a = 0.40
	}
	return a
}

// BinSample is one logging-bin observation from a single-home run: the
// router's per-channel occupancy over the bin's packet-level sample
// window and the derived sensor-side quantities at the configured
// distance.
type BinSample struct {
	// Bin is the bin index, starting at 0.
	Bin int
	// HourOfDay is the bin's local time.
	HourOfDay float64
	// Occupancy holds per-channel airtime fractions in [0, 1], indexed
	// in phy.PoWiFiChannels order (1, 6, 11). The fixed array keeps the
	// per-bin streaming path allocation-free.
	Occupancy [3]float64
	// CumulativePct is the percentage sum across channels (may exceed 100).
	CumulativePct float64
	// SensorRate is the battery-free temperature sensor's update rate
	// (reads/s); 0 when the sensor cannot boot.
	SensorRate float64
	// NetHarvestedW is the sensor harvester's net harvested power (W)
	// under this bin's occupancy: 0 when the sensor cannot clear its
	// cold-start threshold, and possibly negative below sensitivity.
	NetHarvestedW float64
}

// BankedHarvestUW returns the harvested power this bin banks, in µW —
// the single place the silent-bin clamp convention lives: a bin whose
// sensor could not boot banks nothing, and the below-sensitivity
// negative case is clamped to zero so harvest distributions stay
// consistent with silent-bin statistics for marginal placements. Both
// the fleet aggregates and the facade's single-home report fold
// through it.
func (s BinSample) BankedHarvestUW() float64 {
	uw := s.NetHarvestedW * 1e6
	if uw < 0 || s.SensorRate <= 0 {
		return 0
	}
	return uw
}

// Run simulates one home deployment and materializes the full per-bin
// log. It is a thin accumulator over the streaming runner. Options are
// normalized exactly once on this path (runStream assumes normalized
// options, so Run and RunStream cannot double-apply the defaults).
func Run(cfg HomeConfig, opts Options) *Result {
	opts = opts.withDefaults()
	nBins := opts.NumBins()
	res := &Result{
		Home:       cfg,
		BinWidth:   opts.BinWidth,
		Occupancy:  make(map[phy.Channel][]float64, 3),
		Cumulative: make([]float64, 0, nBins),
	}
	NewSampler().runStream(cfg, opts, func(s BinSample) bool {
		for i, chNum := range phy.PoWiFiChannels {
			res.Occupancy[chNum] = append(res.Occupancy[chNum], s.Occupancy[i]*100)
		}
		res.Cumulative = append(res.Cumulative, s.CumulativePct)
		res.HourOfDay = append(res.HourOfDay, s.HourOfDay)
		res.SensorRates = append(res.SensorRates, s.SensorRate)
		return true
	})
	return res
}

// RunStream simulates one home deployment, invoking visit once per
// logging bin in order instead of materializing the log. This is the
// shared single-home code path: the paper's six-home study (Run) keeps
// every bin, while the fleet runner folds each sample into mergeable
// aggregates and discards it, keeping memory constant in deployment
// length and fleet size. The simulation is deterministic in (cfg, opts)
// alone — the visit callback cannot perturb it.
//
// Each call builds a fresh sampling context; callers with many homes to
// run (the fleet's workers) hold a Sampler and call its RunStream
// method instead, which reuses one pooled context for every bin of
// every home with bit-for-bit identical output.
func RunStream(cfg HomeConfig, opts Options, visit func(BinSample)) {
	NewSampler().RunStream(cfg, opts, visit)
}

// BinVisitor receives one BinSample per logging bin, in order. It is
// the interface form of RunStream's callback, introduced for the
// stateful device-lifecycle engine (internal/lifecycle): a lifecycle
// device is a BinVisitor that threads storage state of charge across
// the bins, and the interface dispatch keeps the per-home hot path
// free of per-home closure allocations.
type BinVisitor interface {
	VisitBin(BinSample)
}

// RunVisitor simulates one home deployment, delivering each logging
// bin to v in order — the lifecycle-visiting run mode. The simulation
// is deterministic in (cfg, opts) alone; the visitor cannot perturb
// it. Callers with many homes to run hold a Sampler and use its
// RunVisitor method instead.
func RunVisitor(cfg HomeConfig, opts Options, v BinVisitor) {
	NewSampler().RunVisitor(cfg, opts, v)
}

// Bins returns a single-use iterator over one home deployment's
// logging bins, in order — the iterator form of RunStream, introduced
// for the public SDK's streaming access (powifi.Scenario.Bins).
// Breaking out of the loop stops the simulation mid-home; nothing
// further is simulated. Each call builds a fresh sampling context;
// hot-loop callers should hold a Sampler and use its Bins method.
func Bins(cfg HomeConfig, opts Options) iter.Seq[BinSample] {
	return NewSampler().Bins(cfg, opts)
}
