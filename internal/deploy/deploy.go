// Package deploy reproduces the six-home deployment study of §6: a PoWiFi
// router replaces each home's router for 24 hours while the occupants use
// it normally, with per-channel occupancy logged at 60-second resolution
// (Fig. 14, Table 1) and a battery-free temperature sensor placed ten feet
// away (Fig. 15).
//
// Running a packet-level simulation for six full days of wall-clock time
// is wasteful: occupancy at 60 s resolution is statistically stationary
// within a bin. The runner therefore samples each bin with a short
// packet-level window (default one simulated second) under that bin's
// diurnally-modulated client and neighbor load, and carries the measured
// occupancy into the energy model. DESIGN.md documents this substitution.
package deploy

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// HomeConfig describes one deployment home (Table 1).
type HomeConfig struct {
	// ID is the home number (1-6).
	ID int
	// Users and Devices are the occupants and their Wi-Fi devices.
	Users, Devices int
	// NeighborAPs counts other 2.4 GHz routers in range.
	NeighborAPs int
	// Weekend marks the two homes staged over a weekend.
	Weekend bool
	// StartHour is the local hour the 24 h log begins at (Fig. 14's
	// x-axes differ per home).
	StartHour int
	// Seed drives the home's randomness.
	Seed uint64
}

// PaperHomes returns the six homes of Table 1. Homes 1 and 2 were staged
// over a weekend, the rest on weekdays; start hours follow Fig. 14.
func PaperHomes() []HomeConfig {
	return []HomeConfig{
		{ID: 1, Users: 2, Devices: 6, NeighborAPs: 17, Weekend: true, StartHour: 20, Seed: 101},
		{ID: 2, Users: 1, Devices: 1, NeighborAPs: 4, Weekend: true, StartHour: 16, Seed: 102},
		{ID: 3, Users: 3, Devices: 6, NeighborAPs: 10, StartHour: 16, Seed: 103},
		{ID: 4, Users: 2, Devices: 4, NeighborAPs: 15, StartHour: 20, Seed: 104},
		{ID: 5, Users: 1, Devices: 2, NeighborAPs: 24, StartHour: 0, Seed: 105},
		{ID: 6, Users: 3, Devices: 6, NeighborAPs: 16, StartHour: 20, Seed: 106},
	}
}

// Options controls the deployment runner's fidelity/cost trade-off.
type Options struct {
	// BinWidth is the occupancy logging resolution (60 s in the paper).
	BinWidth time.Duration
	// Window is the packet-level sample simulated per bin.
	Window time.Duration
	// Hours is the deployment duration (24 in the paper).
	Hours float64
	// SensorDistanceFt places the Fig. 15 sensor (10 ft in the paper).
	SensorDistanceFt float64
	// Exact forces the sensor's per-bin rectifier solve onto the direct
	// operating-point solver instead of the error-bounded interpolation
	// surface. The surface path is the default: same boot decisions,
	// harvested power within its certified ε, and a far cheaper bin.
	Exact bool
}

// DefaultOptions returns the paper's logging setup with a one-second
// sampling window per bin.
func DefaultOptions() Options {
	return Options{
		BinWidth:         time.Minute,
		Window:           time.Second,
		Hours:            24,
		SensorDistanceFt: 10,
	}
}

// withDefaults fills unset timing/placement fields individually, so
// fields with meaningful zero values (Exact, and whatever comes next)
// survive a partially specified Options.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.BinWidth == 0 {
		o.BinWidth = d.BinWidth
	}
	if o.Window == 0 {
		o.Window = d.Window
	}
	if o.Hours == 0 {
		o.Hours = d.Hours
	}
	if o.SensorDistanceFt == 0 {
		o.SensorDistanceFt = d.SensorDistanceFt
	}
	return o
}

// NumBins returns the number of whole logging bins the deployment
// spans — the single source of truth for every layer that needs it.
// The epsilon absorbs float rounding when Hours was itself derived
// from a bin count (the fleet layer's duration snapping), so a
// snapped duration always round-trips to the same bin count.
func (o Options) NumBins() int {
	return int(o.Hours*float64(time.Hour)/float64(o.BinWidth) + 1e-9)
}

// Result is one home's deployment log.
type Result struct {
	Home     HomeConfig
	BinWidth time.Duration
	// Occupancy holds per-bin router occupancy percentages per channel.
	Occupancy map[phy.Channel][]float64
	// Cumulative is the per-bin sum across channels (may exceed 100).
	Cumulative []float64
	// SensorRates is the battery-free temperature sensor's per-bin update
	// rate (reads/s) at the configured distance.
	SensorRates []float64
	// HourOfDay maps each bin to its local time.
	HourOfDay []float64
}

// MeanCumulative returns the mean cumulative occupancy percentage, the
// number the paper reports as 78-127% across homes.
func (r *Result) MeanCumulative() float64 {
	if len(r.Cumulative) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.Cumulative {
		sum += v
	}
	return sum / float64(len(r.Cumulative))
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("home %d: %d bins, mean cumulative occupancy %.1f%%",
		r.Home.ID, len(r.Cumulative), r.MeanCumulative())
}

// activity returns the diurnal activity level in [0, 1] for a local hour.
// Weekday evenings peak after work; weekends spread usage through the day.
func activity(hour float64, weekend bool) float64 {
	h := math.Mod(hour, 24)
	var a float64
	switch {
	case h < 6:
		a = 0.08
	case h < 8:
		a = 0.30
	case h < 17:
		if weekend {
			a = 0.55
		} else {
			a = 0.25
		}
	case h < 19:
		a = 0.60
	case h < 23:
		a = 1.00
	default:
		a = 0.40
	}
	return a
}

// BinSample is one logging-bin observation from a single-home run: the
// router's per-channel occupancy over the bin's packet-level sample
// window and the derived sensor-side quantities at the configured
// distance.
type BinSample struct {
	// Bin is the bin index, starting at 0.
	Bin int
	// HourOfDay is the bin's local time.
	HourOfDay float64
	// Occupancy holds per-channel airtime fractions in [0, 1].
	Occupancy map[phy.Channel]float64
	// CumulativePct is the percentage sum across channels (may exceed 100).
	CumulativePct float64
	// SensorRate is the battery-free temperature sensor's update rate
	// (reads/s); 0 when the sensor cannot boot.
	SensorRate float64
	// NetHarvestedW is the sensor harvester's net harvested power (W)
	// under this bin's occupancy: 0 when the sensor cannot clear its
	// cold-start threshold, and possibly negative below sensitivity.
	NetHarvestedW float64
}

// Run simulates one home deployment and materializes the full per-bin
// log. It is a thin accumulator over RunStream.
func Run(cfg HomeConfig, opts Options) *Result {
	opts = opts.withDefaults()
	nBins := opts.NumBins()
	res := &Result{
		Home:       cfg,
		BinWidth:   opts.BinWidth,
		Occupancy:  make(map[phy.Channel][]float64, 3),
		Cumulative: make([]float64, 0, nBins),
	}
	RunStream(cfg, opts, func(s BinSample) {
		for _, chNum := range phy.PoWiFiChannels {
			res.Occupancy[chNum] = append(res.Occupancy[chNum], s.Occupancy[chNum]*100)
		}
		res.Cumulative = append(res.Cumulative, s.CumulativePct)
		res.HourOfDay = append(res.HourOfDay, s.HourOfDay)
		res.SensorRates = append(res.SensorRates, s.SensorRate)
	})
	return res
}

// RunStream simulates one home deployment, invoking visit once per
// logging bin in order instead of materializing the log. This is the
// shared single-home code path: the paper's six-home study (Run) keeps
// every bin, while the fleet runner folds each sample into mergeable
// aggregates and discards it, keeping memory constant in deployment
// length and fleet size. The simulation is deterministic in (cfg, opts)
// alone — the visit callback cannot perturb it.
func RunStream(cfg HomeConfig, opts Options, visit func(BinSample)) {
	opts = opts.withDefaults()
	nBins := opts.NumBins()
	rng := xrand.NewFromLabel(cfg.Seed, "home")

	// Distribute neighbor APs across the three channels. Real 2.4 GHz
	// neighborhoods cluster unevenly on 1/6/11 (auto channel selection
	// herds APs), which is what makes Fig. 14's per-channel curves differ
	// so strongly between homes: draw per-home channel weights with a
	// cubic skew, then assign APs by weight.
	weights := [3]float64{}
	wsum := 0.0
	for i := range weights {
		u := rng.Float64()
		weights[i] = u * u * u
		wsum += weights[i]
	}
	apChannels := make(map[phy.Channel]int, 3)
	for i := 0; i < cfg.NeighborAPs; i++ {
		u := rng.Float64() * wsum
		acc := 0.0
		for j, w := range weights {
			acc += w
			if u < acc {
				apChannels[phy.PoWiFiChannels[j]]++
				break
			}
		}
	}

	sensor := core.NewBatteryFreeTempSensor()
	sensor.Exact = opts.Exact

	for bin := 0; bin < nBins; bin++ {
		hour := math.Mod(float64(cfg.StartHour)+float64(bin)*opts.BinWidth.Hours(), 24)
		act := activity(hour, cfg.Weekend)

		// Per-bin offered loads.
		clientLoad := (0.02 + 0.45*act) * float64(cfg.Devices) / 6.0
		if clientLoad > 0.6 {
			clientLoad = 0.6
		}
		neighborLoad := make(map[phy.Channel]float64, 3)
		// Iterate channels in fixed order so the RNG draws stay
		// deterministic (map iteration order would not be).
		for _, chNum := range phy.PoWiFiChannels {
			n := apChannels[chNum]
			if n == 0 {
				continue
			}
			// Each neighbor AP idles at ~1% airtime (beacons, chatter) and
			// climbs toward ~13% when its household is active (streaming
			// video dominates evening loads).
			l := float64(n) * (0.012 + 0.120*act) * rng.Uniform(0.4, 1.6)
			if l > 0.85 {
				l = 0.85
			}
			neighborLoad[chNum] = l
		}

		occ := sampleBin(cfg, bin, clientLoad, neighborLoad, opts.Window)
		cum := 0.0
		for _, chNum := range phy.PoWiFiChannels {
			cum += occ[chNum] * 100
		}

		link := core.PowerLink{
			TxPowerDBm: 30,
			TxGainDBi:  6,
			RxGainDBi:  2,
			DistanceFt: opts.SensorDistanceFt,
			Occupancy:  occ,
		}
		rate, netW := sensor.Evaluate(link)
		visit(BinSample{
			Bin:           bin,
			HourOfDay:     hour,
			Occupancy:     occ,
			CumulativePct: cum,
			SensorRate:    rate,
			NetHarvestedW: netW,
		})
	}
}

// sampleBin runs one packet-level window and returns the router's
// per-channel occupancy fractions.
func sampleBin(cfg HomeConfig, bin int, clientLoad float64, neighborLoad map[phy.Channel]float64, window time.Duration) map[phy.Channel]float64 {
	sched := eventsim.New()
	seed := cfg.Seed*1_000_003 + uint64(bin)
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for _, chNum := range phy.PoWiFiChannels {
		channels[chNum] = medium.NewChannel(chNum, sched)
	}
	rcfg := router.DefaultConfig()
	// Consumer home routers run the injectors on a slow MIPS/ARM SoC that
	// also handles NAT; the user-space refill latency is several times the
	// benchmark router's, which caps per-channel occupancy near the
	// 30-45% the paper's Fig. 14 shows.
	rcfg.UserWakeCost = 450 * time.Microsecond
	rt := router.New(rcfg, sched, channels, 100, seed)

	monitors := make(map[phy.Channel]*monitor.Monitor, 3)
	for i, chNum := range phy.PoWiFiChannels {
		monitors[chNum] = monitor.New(channels[chNum], window, 100+i)
	}

	// Neighbor load on each channel, spread over several contending
	// stations: a crowded neighborhood does not just offer more airtime,
	// it also fields more DCF contenders, each of which wins transmit
	// opportunities against our router.
	for i, chNum := range phy.PoWiFiChannels {
		load := neighborLoad[chNum]
		if load <= 0 {
			continue
		}
		stations := 1 + int(load/0.2)
		if stations > 4 {
			stations = 4
		}
		for k := 0; k < stations; k++ {
			bg := traffic.NewBackground(sched, channels[chNum], 300+10*i+k,
				medium.Location{X: 8, Y: 6 + float64(k)}, load/float64(stations),
				xrand.NewFromLabel(seed, fmt.Sprintf("bg/%v/%d", chNum, k)))
			bg.Start()
		}
	}

	// The home's own client traffic rides channel 1 through the router's
	// fair queue, competing with the injector exactly as §3.2 describes.
	if clientLoad > 0 {
		radio := rt.Radio(phy.Channel1).MAC
		feedClientLoad(sched, radio, clientLoad, xrand.NewFromLabel(seed, "clients"))
	}

	rt.Start()
	sched.RunUntil(window)

	occ := make(map[phy.Channel]float64, 3)
	for chNum, mon := range monitors {
		occ[chNum] = mon.MeanOccupancy()
	}
	return occ
}

// feedClientLoad generates downlink client traffic at the router: frames
// enqueued into the client-flow side of the fair queue at a Poisson rate
// targeting the given airtime fraction.
func feedClientLoad(sched *eventsim.Scheduler, radio *mac.Station, load float64, rng *xrand.Rand) {
	frameAir := float64(phy.Airtime(1500+phy.MACOverheadBytes, phy.Rate54Mbps))
	mean := frameAir / load
	var schedule func()
	schedule = func() {
		sched.After(time.Duration(rng.Exp(mean)), func() {
			radio.Enqueue(&mac.Frame{
				DstID:     medium.Broadcast, // home devices in aggregate
				Bytes:     1500,
				Kind:      medium.KindData,
				FixedRate: phy.Rate54Mbps,
			})
			schedule()
		})
	}
	schedule()
}
