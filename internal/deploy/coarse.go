package deploy

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// CoarseOptions tunes the error-bounded coarse tier. The zero value
// selects the certified defaults; the certification suite in
// batch_test.go pins the contract for exactly these values, so callers
// that override them take on their own validation.
//
// The certified ε is tied to the measurement window: the occupancy
// proxy is a regression over event-simulated anchors, so its error
// floor is the anchors' own DCF measurement noise, which shrinks with
// the number of frames a window fits. The contract is certified at the
// fleet's default 10ms window (per-home mean occupancy within 10%,
// banked harvest within 15%, population aggregates unbiased within 3%,
// boot/silence decisions bit-identical always); very short windows
// (≲5ms) quantize occupancy coarsely enough that the per-home
// magnitude bounds do not hold, though the decision guarantee — which
// rests on the guard band, not the fit — still does.
type CoarseOptions struct {
	// Stride is the anchor spacing: every Stride-th bin (plus the final
	// bin) runs the full packet-level event simulation; the bins between
	// anchors are proxied unless escalated. Default 6.
	Stride int
	// Guard is the relative occupancy guard band of the escalation
	// check: a proxied bin is accepted only if the boot/silence decision
	// is unchanged when its proxied occupancy is scaled by (1-Guard) and
	// (1+Guard). Bins whose decision flips anywhere in that band — homes
	// near the boot threshold — escalate to the exact event simulation.
	// Default 0.5.
	Guard float64
}

func (c CoarseOptions) withDefaults() CoarseOptions {
	if c.Stride == 0 {
		c.Stride = 6
	}
	if c.Stride < 1 {
		c.Stride = 1
	}
	if c.Guard == 0 {
		c.Guard = 0.5
	}
	return c
}

// RunBatchCoarse is RunBatch on the coarse tier: the per-bin
// packet-level event simulation — the dominant cost of a fleet bin —
// runs only on anchor bins (every Stride-th plus the last), and the
// bins between anchors take a proxied occupancy fitted per channel to
// the anchors' exact offered loads. Only anchor (and escalated) bins
// pay the link-budget + rectifier-surface evaluation; a proxied bin's
// outputs come from two cheap closed forms instead:
//
//   - its boot/silence decision is the surrounding anchors' consensus,
//     accepted only after a single guard query confirms the verdict is
//     stable under a ±Guard relative occupancy swing (silence is
//     monotone in occupancy at the fixed link budget, so one query at
//     the adversarial end of the swing certifies the whole interval;
//     a per-home dominance frontier dedups queries across bins);
//   - its harvest magnitude comes from a least-squares fit of the
//     home's awake anchors (net harvested power against cumulative
//     occupancy), and its sensor rate from the sensor's closed-form
//     rate curve at that fitted power.
//
// The tier is error-bounded by the same discipline as the operating-
// point surface: decisions get a guard band, magnitudes get an
// empirical ε. Any proxied bin whose anchors disagree, whose guard
// query fails, or whose fitted rate contradicts the certified verdict
// escalates to the exact event simulation + surface evaluation. Homes
// far from the boot threshold — the vast majority at any given
// placement — therefore skip most of their event simulation, while
// marginal homes degrade toward the exact tier rather than toward
// wrong decisions. The certification suite asserts, across seeds and
// populations, that coarse silent-bin decisions are bit-identical to
// the exact tier's and aggregate magnitudes stay within the
// documented bound.
//
// each and the return value follow the RunBatch contract; each is
// called only for bins that are actually event-simulated.
func (smp *Sampler) RunBatchCoarse(cfg HomeConfig, opts Options, copts CoarseOptions, b *BinBatch, each func(bin int) bool) bool {
	opts = opts.withDefaults()
	copts = copts.withDefaults()
	nBins := opts.NumBins()
	smp.planBins(cfg, opts, nBins)

	smp.sensor.Exact = opts.Exact
	for i := range smp.monitors {
		smp.monitors[i].BinWidth = opts.Window
	}

	b.Reset(nBins)
	copy(b.Hour, smp.plan.hour)

	simulate := func(bin int) bool {
		if each != nil && !each(bin) {
			return false
		}
		b.Occupancy[bin] = smp.sampleBin(cfg.Seed*1_000_003+uint64(bin),
			smp.plan.clientLoad[bin], smp.plan.neighborLoad[bin], opts.Window)
		b.Simulated[bin] = true
		smp.tele.Bin()
		if smp.tr != nil {
			smp.tr.BinSimulated(bin, smp.sched.Scheduled())
		}
		return true
	}

	// Anchor pass: exact event simulation on the stride grid plus the
	// final bin, so every proxied bin has anchors on both sides.
	for bin := 0; bin < nBins; bin += copts.Stride {
		if !simulate(bin) {
			return false
		}
	}
	if last := nBins - 1; last >= 0 && !b.Simulated[last] {
		if !simulate(last) {
			return false
		}
	}

	// Proxy pass: estimate each skipped bin's occupancy from the home's
	// anchor set. The bin plan carries every bin's exact offered loads —
	// including their per-bin jitter draws — so the only thing being
	// approximated is the smooth load→occupancy response of the DCF
	// medium. Per channel, fit that response once per home by least
	// squares over all anchors (occupancy ≈ α + β·offered load; the
	// intercept absorbs the router's standing occupancy floor) and
	// predict skipped bins from their known loads. Pooling every anchor
	// into one fit averages down the per-window DCF measurement noise
	// that any two-anchor interpolation would inject verbatim, and the
	// load regressor tracks both the diurnal ramp and the per-bin jitter
	// that a pure time interpolation would smooth away. Offered load is
	// exact (not a noisy regressor), so the fit is unbiased under local
	// linearity. Occupancy is the only event-simulation output the
	// evaluate stage consumes, so this is the entire approximation.
	var alpha, beta [3]float64
	for c := 0; c < 3; c++ {
		var n, sx, sy, sxx, sxy float64
		for bin := 0; bin < nBins; bin++ {
			if !b.Simulated[bin] {
				continue
			}
			x := smp.coarseLoad(bin, c)
			y := b.Occupancy[bin][c]
			n++
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		if denom := n*sxx - sx*sx; denom > 1e-9 {
			beta[c] = (n*sxy - sx*sy) / denom
			alpha[c] = (sy - beta[c]*sx) / n
		} else {
			// Constant load across anchors: the response collapses to
			// the anchors' mean occupancy.
			beta[c] = 0
			alpha[c] = sy / n
		}
		smp.tr.OccFit(c, beta[c])
	}
	for bin := 0; bin < nBins; bin++ {
		if b.Simulated[bin] {
			continue
		}
		var occ [3]float64
		for c := range occ {
			o := alpha[c] + beta[c]*smp.coarseLoad(bin, c)
			if o < 0 {
				o = 0
			} else if o > 1 {
				o = 1
			}
			occ[c] = o
		}
		b.Occupancy[bin] = occ
	}

	// Cumulative occupancy is a pure fold of the occupancy vector; the
	// rectifier chain only enters for rate and harvest below.
	for bin := 0; bin < nBins; bin++ {
		cum := 0.0
		for _, v := range b.Occupancy[bin] {
			cum += v * 100
		}
		b.CumulativePct[bin] = cum
	}

	// Rate/harvest pass. Only the anchors go through the full surface
	// solve — two damped fixed points per query, the dominant non-event
	// cost of a coarse bin. Proxied bins take their decision from the
	// surrounding anchors (escalating on disagreement), certify it with
	// a guard-band query, and take their banked-harvest magnitude from a
	// least-squares fit of the anchors' net harvest against total
	// occupancy (incident energy is linear in per-channel airtime at a
	// fixed placement, so total occupancy is the natural regressor; the
	// update rate is a closed form of net harvest and needs no fit of
	// its own).
	for bin := 0; bin < nBins; bin++ {
		if b.Simulated[bin] {
			smp.tr.SetBin(bin)
			link := core.PoWiFiLinkOccupancy(opts.SensorDistanceFt, b.Occupancy[bin])
			b.SensorRate[bin], b.NetHarvestedW[bin] = smp.sensor.Evaluate(link)
		}
	}
	var hn, hsx, hsy, hsxx, hsxy float64
	for bin := 0; bin < nBins; bin++ {
		// Silent anchors bank nothing by clamp, not by physics; only
		// awake anchors lie on the harvest response.
		if !b.Simulated[bin] || b.SensorRate[bin] <= 0 {
			continue
		}
		x := b.CumulativePct[bin]
		y := b.NetHarvestedW[bin]
		hn++
		hsx += x
		hsy += y
		hsxx += x * x
		hsxy += x * y
	}
	var hAlpha, hBeta float64
	if denom := hn*hsxx - hsx*hsx; denom > 1e-9 {
		hBeta = (hn*hsxy - hsx*hsy) / denom
		hAlpha = (hsy - hBeta*hsx) / hn
	} else if hn > 0 {
		hBeta = 0
		hAlpha = hsy / hn
	}
	smp.tr.HarvestFit(hBeta)

	// Decision + guard pass. The decision surface (SensorRate > 0) is
	// monotone in occupancy — more airtime is more incident energy — so
	// silence is downward-closed: scaling a bin's occupancy down can only
	// keep or create silence, scaling up can only keep or break it. Two
	// consequences the pass exploits:
	//
	//   - One guard query certifies the whole ±Guard band: a silent
	//     verdict must hold at (1+Guard) and a non-silent verdict at
	//     (1-Guard); the opposite end then follows by monotonicity.
	//   - Verdicts transfer between bins by componentwise domination: a
	//     bin whose occupancy dominates a known non-silent bin is
	//     non-silent without a query, and one dominated by a known silent
	//     bin is silent. The diurnal load ramp makes a home's bins
	//     near-totally ordered, so each home pays only a few frontier
	//     queries instead of one per proxied bin.
	//
	// Any bin whose anchors disagree, whose guard query contradicts the
	// anchor verdict, or whose fitted harvest contradicts the verdict's
	// sign escalates to the exact event simulation.
	esc := smp.escBuf[:0]
	var guardHi, guardLo frontier
	for bin := 0; bin < nBins; bin++ {
		if b.Simulated[bin] {
			continue
		}
		a0, a1 := smp.coarseAnchors(bin, nBins, copts.Stride)
		silent := b.SensorRate[a0] <= 0
		if (b.SensorRate[a1] <= 0) != silent {
			esc = append(esc, escalation{int32(bin), trace.EscConsensusSplit})
			smp.tr.Escalate(bin, trace.EscConsensusSplit)
			continue
		}
		occ := b.Occupancy[bin]
		var stable bool
		if silent {
			// Must stay silent even with Guard more airtime.
			switch guardHi.knows(occ) {
			case verdictSilent:
				stable = true
			case verdictAwake:
				stable = false
			default:
				smp.tr.SetBin(bin)
				stable = smp.silentAt(opts, occ, 1+copts.Guard)
				guardHi.add(occ, stable)
				smp.tr.GuardQuery(bin, stable)
			}
		} else {
			// Must stay awake even with Guard less airtime.
			switch guardLo.knows(occ) {
			case verdictAwake:
				stable = true
			case verdictSilent:
				stable = false
			default:
				smp.tr.SetBin(bin)
				stable = !smp.silentAt(opts, occ, 1-copts.Guard)
				guardLo.add(occ, !stable)
				smp.tr.GuardQuery(bin, stable)
			}
		}
		if !stable {
			esc = append(esc, escalation{int32(bin), trace.EscGuardDisagree})
			smp.tr.Escalate(bin, trace.EscGuardDisagree)
			continue
		}
		if silent {
			b.SensorRate[bin], b.NetHarvestedW[bin] = 0, 0
			continue
		}
		w := hAlpha + hBeta*b.CumulativePct[bin]
		rate := smp.sensor.Sensor.UpdateRate(w)
		if rate <= 0 {
			// The fit contradicts the certified verdict; trust neither.
			esc = append(esc, escalation{int32(bin), trace.EscOccFitUnstable})
			smp.tr.Escalate(bin, trace.EscOccFitUnstable)
			continue
		}
		b.SensorRate[bin], b.NetHarvestedW[bin] = rate, w
	}
	smp.escBuf = esc[:0]
	for _, e := range esc {
		bin := int(e.bin)
		if !simulate(bin) {
			return false
		}
		smp.tr.SetBin(bin)
		link := core.PoWiFiLinkOccupancy(opts.SensorDistanceFt, b.Occupancy[bin])
		b.SensorRate[bin], b.NetHarvestedW[bin] = smp.sensor.Evaluate(link)
		cum := 0.0
		for _, v := range b.Occupancy[bin] {
			cum += v * 100
		}
		b.CumulativePct[bin] = cum
	}
	return true
}

// verdict is a frontier lookup result.
type verdict uint8

const (
	verdictUnknown verdict = iota
	verdictSilent
	verdictAwake
)

// frontier caches guard-query verdicts at one occupancy scale and
// answers later queries by componentwise domination: silence is
// downward-closed in occupancy, so a vector below a silent one is
// silent and a vector above an awake one is awake. The slices stay a
// handful of entries long (one home's antichain), so linear scans beat
// any indexed structure.
type frontier struct {
	silent [][3]float64
	awake  [][3]float64
}

func domLE(a, b [3]float64) bool {
	return a[0] <= b[0] && a[1] <= b[1] && a[2] <= b[2]
}

func (f *frontier) knows(occ [3]float64) verdict {
	for _, s := range f.silent {
		if domLE(occ, s) {
			return verdictSilent
		}
	}
	for _, a := range f.awake {
		if domLE(a, occ) {
			return verdictAwake
		}
	}
	return verdictUnknown
}

func (f *frontier) add(occ [3]float64, silent bool) {
	if silent {
		f.silent = append(f.silent, occ)
	} else {
		f.awake = append(f.awake, occ)
	}
}

// coarseLoad returns the bin's total offered load on channel c: the
// planned neighbor load, plus the home's own client feed on channel 1
// (it rides the router's fair queue there).
func (smp *Sampler) coarseLoad(bin, c int) float64 {
	l := smp.plan.neighborLoad[bin][c]
	if c == 0 {
		l += smp.plan.clientLoad[bin]
	}
	return l
}

// coarseAnchors returns the simulated anchor bins surrounding a proxied
// bin on the stride grid: the anchor at or below it, and the next one
// above (clamped to the final bin, which is always simulated).
func (smp *Sampler) coarseAnchors(bin, nBins, stride int) (a0, a1 int) {
	a0 = bin - bin%stride
	a1 = a0 + stride
	if a1 > nBins-1 {
		a1 = nBins - 1
	}
	return a0, a1
}

// silentAt reports whether the sensor is silent (cannot boot, or nets
// nothing) at the given occupancy scaled by f, each channel clamped to
// a full airtime share.
func (smp *Sampler) silentAt(opts Options, occ [3]float64, f float64) bool {
	for c := range occ {
		occ[c] *= f
		if occ[c] > 1 {
			occ[c] = 1
		}
	}
	rate, _ := smp.sensor.Evaluate(core.PoWiFiLinkOccupancy(opts.SensorDistanceFt, occ))
	return rate <= 0
}
