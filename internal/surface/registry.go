package surface

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/harvester"
)

// enabled is the process-wide escape hatch: when false, callers that
// consult Enabled() (core.TempSensorDevice.Evaluate) take the exact
// solver instead of the surface. The CLIs expose it as -exact.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether the surface fast path is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled toggles the surface fast path process-wide. It exists for
// the CLIs' -exact escape hatch and for A/B parity tests; per-run control
// should prefer the Exact fields on deploy.Options and fleet.Config.
func SetEnabled(v bool) { enabled.Store(v) }

// registry caches one built surface per distinct harvester
// configuration. Devices are constructed afresh per simulated home, so
// the cache is keyed by the harvester's physical fingerprint rather than
// by pointer identity; builds are deterministic in the fingerprint, so
// sharing a surface across goroutines cannot perturb results.
var registry sync.Map // fingerprint string -> *registryEntry

type registryEntry struct {
	once sync.Once
	s    *Surface
}

// Fingerprint canonically describes the harvester parameters the surface
// depends on. Two harvesters with equal fingerprints have identical
// exact solvers, hence identical surfaces.
func Fingerprint(h *harvester.Harvester) string {
	seiko, bq := "-", "-"
	if h.Seiko != nil {
		seiko = fmt.Sprintf("%+v", *h.Seiko)
	}
	if h.BQ != nil {
		bq = fmt.Sprintf("%+v", *h.BQ)
	}
	return fmt.Sprintf("v%d|%T%+v|%+v|%s|%s", h.Version, h.Match, h.Match, h.Rect, seiko, bq)
}

// For returns the process-wide shared surface for h, building it with
// DefaultOptions on first use. The build runs at most once per distinct
// harvester configuration regardless of how many goroutines race here.
func For(h *harvester.Harvester) *Surface {
	key := Fingerprint(h)
	v, _ := registry.LoadOrStore(key, &registryEntry{})
	e := v.(*registryEntry)
	e.once.Do(func() { e.s = New(h, DefaultOptions()) })
	return e.s
}
