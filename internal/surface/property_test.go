package surface

import (
	"math"
	"testing"

	"repro/internal/harvester"
	"repro/internal/rf"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Property suite: the ε guarantee the issue demands, checked end to end
// on randomized link budgets. The contract, as documented in DESIGN.md:
// |interp − exact| ≤ max(ε·|exact|, absolute floor), where the floors
// cover the quantities' zero crossings — the bq25570's net charge power
// crosses zero where harvest balances quiescent draw, and no relative
// bound is satisfiable at a crossing. The floors are picowatt-scale
// (signals of interest are microwatts): 2 pW of net power, and the
// corresponding 1 µHz of update rate.
const (
	netWFloor = 2e-12 // watts, absolute
	accFloor  = 1e-13 // watts, absolute (accepted power never crosses zero)
	rateFloor = 1e-6  // hertz, absolute
)

// randomBudget draws a bursty link budget the way the deployment and
// fleet layers produce them: a Friis link at a random distance with
// random per-channel occupancies (occasionally degenerate).
func randomBudget(rng *xrand.Rand) (chans []harvester.ChannelPower, occ []float64) {
	distM := units.FeetToMeters(rng.Uniform(1, 36))
	link := rf.Link{
		TxPowerDBm: rng.Uniform(20, 33),
		TxAntenna:  rf.Antenna{GainDBi: 6},
		RxAntenna:  rf.Antenna{GainDBi: 2},
		DistanceM:  distM,
	}
	for _, freq := range []float64{2.412e9, 2.437e9, 2.462e9} {
		if rng.Float64() < 0.1 {
			continue // channel idle in this bin
		}
		chans = append(chans, harvester.ChannelPower{FreqHz: freq, PowerW: link.ReceivedPowerW(freq)})
		o := rng.Float64()
		if rng.Float64() < 0.1 {
			o = 0 // occupied channel that happened to log zero airtime
		}
		occ = append(occ, o)
	}
	return chans, occ
}

func checkBudget(t *testing.T, h *harvester.Harvester, s *Surface, chans []harvester.ChannelPower, occ []float64) (worst float64) {
	t.Helper()
	eps := s.Epsilon()

	bootExact := h.CanBootBursty(chans, occ)
	bootSurf := s.CanBootBursty(chans, occ)
	if bootExact != bootSurf {
		t.Errorf("%v: boot decision diverged (exact %v, surface %v) for %v/%v",
			h.Version, bootExact, bootSurf, chans, occ)
	}

	exact := h.BurstyOperating(chans, occ)
	surf := s.BurstyOperating(chans, occ)
	// qNet/qAcc measure the error as a fraction of the allowed bound;
	// anything over 1 is a contract violation.
	qNet := math.Abs(surf.HarvestedW-exact.HarvestedW) / math.Max(eps*math.Abs(exact.HarvestedW), netWFloor)
	if qNet > 1 {
		t.Errorf("%v: net power error %.3g× the ε bound (exact %g, surface %g) for %v/%v",
			h.Version, qNet, exact.HarvestedW, surf.HarvestedW, chans, occ)
	}
	qAcc := math.Abs(surf.AcceptedW-exact.AcceptedW) / math.Max(eps*exact.AcceptedW, accFloor)
	if qAcc > 1 {
		t.Errorf("%v: accepted power error %.3g× the ε bound (exact %g, surface %g)",
			h.Version, qAcc, exact.AcceptedW, surf.AcceptedW)
	}
	return math.Max(qNet, qAcc)
}

// TestSurfaceMatchesExactOnRandomLinkBudgets is the headline property:
// randomized link budgets, battery-free and battery-recharging chains,
// |interp − exact| ≤ ε for net power (and the boot boolean identical —
// the guard band resolves threshold-adjacent queries exactly).
func TestSurfaceMatchesExactOnRandomLinkBudgets(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for _, mk := range []func() *harvester.Harvester{harvester.NewBatteryFree, harvester.NewBatteryCharging} {
		h := mk()
		s := For(h)
		rng := xrand.NewFromLabel(7, "surface/property/"+h.Version.String())
		worst := 0.0
		for k := 0; k < n; k++ {
			chans, occ := randomBudget(rng)
			if w := checkBudget(t, h, s, chans, occ); w > worst {
				worst = w
			}
		}
		t.Logf("%v: worst error %.3g× the ε bound over %d budgets", h.Version, worst, n)
	}
}

// TestRateMatchesExact pins the sensor-facing contract on the full
// device chain quantity: rate = min(netW/readEnergy, cap) computed from
// both paths, via the Evaluate helper.
func TestRateMatchesExact(t *testing.T) {
	const readEnergyJ = 2.77e-6 // §5.1 per-read energy
	n := 40
	if testing.Short() {
		n = 8
	}
	h := harvester.NewBatteryFree()
	s := For(h)
	rng := xrand.NewFromLabel(11, "surface/rate")
	for k := 0; k < n; k++ {
		chans, occ := randomBudget(rng)
		netS, bootS := s.Evaluate(chans, occ)
		var netE float64
		bootE := h.CanBootBursty(chans, occ)
		if bootE {
			netE = h.BurstyOperating(chans, occ).HarvestedW
		}
		if bootS != bootE {
			t.Fatalf("boot diverged: %v vs %v", bootS, bootE)
		}
		rateS := math.Min(math.Max(netS, 0)/readEnergyJ, 40)
		rateE := math.Min(math.Max(netE, 0)/readEnergyJ, 40)
		if err := math.Abs(rateS - rateE); err > math.Max(s.Epsilon()*rateE, rateFloor) {
			t.Errorf("rate error %g Hz (exact %g, surface %g)", err, rateE, rateS)
		}
	}
}

// TestGridMonotoneAndNoOvershoot pins the grid structure the issue
// names: strictly increasing abscissae, and interpolants that never
// leave the interval spanned by their bracketing node values (the
// monotone-cubic guarantee thresholding relies on).
func TestGridMonotoneAndNoOvershoot(t *testing.T) {
	s := For(harvester.NewBatteryFree())
	rng := xrand.NewFromLabel(13, "surface/monotone")
	for name, g := range map[string]*grid{"op": s.op, "boot": s.boot} {
		for i := 1; i < len(g.xs); i++ {
			if g.xs[i] <= g.xs[i-1] {
				t.Fatalf("%s: abscissae not strictly increasing at %d", name, i)
			}
		}
		// Voltage node values are non-decreasing: more accepted power
		// never lowers the rectifier output (allowing bisection noise).
		for i := 1; i < len(g.xs); i++ {
			if g.ys[curveV][i] < g.ys[curveV][i-1]-1e-9 {
				t.Errorf("%s: v grid not monotone at node %d: %g then %g",
					name, i, g.ys[curveV][i-1], g.ys[curveV][i])
			}
		}
		for k := 0; k < 2000; k++ {
			i := rng.Intn(len(g.xs) - 1)
			x := rng.Uniform(g.xs[i], g.xs[i+1])
			for c := range g.ys {
				got, ok := g.at(c, x)
				if !ok {
					t.Fatalf("%s: in-domain query rejected", name)
				}
				lo := math.Min(g.ys[c][i], g.ys[c][i+1])
				hi := math.Max(g.ys[c][i], g.ys[c][i+1])
				slack := 1e-12 * math.Max(math.Abs(lo), math.Abs(hi))
				if got < lo-slack || got > hi+slack {
					t.Errorf("%s curve %d: interpolant %g overshoots bracket [%g, %g] at x=%g",
						name, c, got, lo, hi, x)
				}
			}
		}
	}
}

// TestThresholdNeighborhoodExact pins the guard band: link budgets swept
// finely across the battery-free boot threshold must agree with the
// exact solver on every single boot decision (this is where a naive
// interpolation would flip marginal homes).
func TestThresholdNeighborhoodExact(t *testing.T) {
	h := harvester.NewBatteryFree()
	s := For(h)
	n := 120
	if testing.Short() {
		n = 24
	}
	// Sweep distance through the boot-range knee at fixed occupancy.
	for k := 0; k < n; k++ {
		distFt := 18 + 8*float64(k)/float64(n) // 18–26 ft straddles the knee
		link := rf.Link{
			TxPowerDBm: 30,
			TxAntenna:  rf.Antenna{GainDBi: 6},
			RxAntenna:  rf.Antenna{GainDBi: 2},
			DistanceM:  units.FeetToMeters(distFt),
		}
		var chans []harvester.ChannelPower
		for _, freq := range []float64{2.412e9, 2.437e9, 2.462e9} {
			chans = append(chans, harvester.ChannelPower{FreqHz: freq, PowerW: link.ReceivedPowerW(freq)})
		}
		occ := []float64{0.3, 0.3, 0.3}
		if got, want := s.CanBootBursty(chans, occ), h.CanBootBursty(chans, occ); got != want {
			t.Errorf("boot decision flipped at %.2f ft: surface %v, exact %v", distFt, got, want)
		}
	}
}
