// Package surface is the error-bounded operating-point surface for the
// fleet hot path: a deterministic interpolation layer that caches the
// harvester's rectifier operating-point solve (a cycle-averaged Shockley
// solve via log-domain Bessel functions, nested inside bisections) on an
// adaptively refined monotone grid, so the per-bin cost of
// core.TempSensorDevice.Evaluate drops from a millisecond-scale numeric
// solve to a bounded table lookup.
//
// # What is tabulated
//
// Everything expensive in the bursty-drive solve factors through three
// smooth one-dimensional functions of the total accepted RF power a:
//
//   - VRect(a), IRect(a): the rectifier DC operating point under the
//     converter load line, and
//   - Rp(a): the rectifier's parallel input resistance at that point
//
// tabulated once for the running converter load and once (battery-free
// only) for the Seiko pump's pre-start idle leak. The frequency- and
// channel-dependent algebra — Friis link budgets, the parallel-to-series
// impedance conversion, the matching network's transfer fraction, the
// bursty conditioning, and the multi-channel fixed point — is cheap
// closed-form arithmetic and stays exact, shared with the direct solver
// through the exported helpers in internal/harvester. The surface
// therefore handles any distance, wall, channel mix, or occupancy vector
// without growing extra grid dimensions.
//
// # The ε guarantee
//
// Grids are refined until monotone-cubic (PCHIP) interpolation matches
// the exact solver at every interval midpoint within Options.Epsilon
// divided by a safety factor that covers the error amplification through
// the fixed point and the converter maps. Queries outside the grid
// domain fall back to the exact solver, as does any query whose
// interpolated rectifier voltage lands within a guard band of the Seiko
// pump's 300 mV threshold — the one genuine discontinuity in the chain —
// so boot decisions are always bit-identical to the exact path. The
// property suite asserts |interp − exact| ≤ ε end to end on randomized
// link budgets.
//
// # Determinism
//
// A surface is a pure function of the harvester's configuration and the
// build options: node placement derives from deterministic midpoint
// bisection against the exact solver, never from query order, worker
// count, or scheduling. Built surfaces are immutable, so fleet runs stay
// bit-for-bit identical at any -workers value.
package surface

import (
	"math"

	"repro/internal/harvester"
	"repro/internal/phy"
	"repro/internal/rf"
)

// Options parameterizes a surface build.
type Options struct {
	// Epsilon is the relative error bound the surface certifies for
	// harvested power (and hence sensor update rate) against the exact
	// solver. Default 1e-6.
	Epsilon float64
	// AMinW and AMaxW bound the accepted-power domain of the grids;
	// queries outside fall back to the exact solver.
	AMinW, AMaxW float64
	// MaxNodes caps each grid's node count.
	MaxNodes int
	// VBandV is the guard band (volts) around the Seiko pump's startup
	// threshold within which the surface defers to the exact solver.
	VBandV float64
}

// DefaultOptions returns the production configuration: ε = 1e-6 over an
// accepted-power domain that covers every link budget the simulator can
// produce between ~0.6 ft and far beyond the sensitivity floor.
func DefaultOptions() Options {
	return Options{
		Epsilon:  1e-6,
		AMinW:    1e-12,
		AMaxW:    0.1,
		MaxNodes: 6000,
		VBandV:   1e-3,
	}
}

// withDefaults fills zero fields from DefaultOptions.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Epsilon <= 0 {
		o.Epsilon = d.Epsilon
	}
	if o.AMinW <= 0 {
		o.AMinW = d.AMinW
	}
	if o.AMaxW <= o.AMinW {
		o.AMaxW = d.AMaxW
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = d.MaxNodes
	}
	if o.VBandV <= 0 {
		o.VBandV = d.VBandV
	}
	return o
}

// safetyFactor divides Epsilon to obtain the per-node midpoint tolerance:
// it covers the error amplification from interpolated input resistance
// through the multi-channel fixed point (the transfer fraction's O(1)
// sensitivity to ln Rp times the harvest curve's log-slope near its knee)
// plus the converter map's v² dependence. The property suite measures the
// end-to-end error the factor leaves and asserts it stays under Epsilon.
const safetyFactor = 16

// Curve indices within the operating and startup grids.
const (
	curveV    = 0 // rectifier output voltage (V)
	curveI    = 1 // rectifier output current (A)
	curveLnRp = 2 // ln of the rectifier's parallel input resistance (Ω)
)

// Surface is the error-bounded operating-point surface for one harvester
// assembly. It is immutable after construction and safe for concurrent
// use.
type Surface struct {
	h    *harvester.Harvester
	opts Options

	op   *grid // operating (converter) load: v, i, ln rp over ln a
	boot *grid // startup idle-leak load (battery-free only): v, ln rp

	// xfer caches the matching network's per-frequency constants for
	// the three PoWiFi channel frequencies, precomputed at build with
	// the exact expressions PowerTransferFraction evaluates, so the
	// per-bin fixed point recomputes only the load-dependent terms.
	// Queries at other frequencies fall through to the network itself.
	// Immutable after New, hence safe for concurrent readers.
	xfer [3]freqXfer
	hp   rf.HighPassLSection // the network behind xfer, when hpOK
	hpOK bool
}

// freqXfer holds one frequency's load-independent constants: the
// matching network's shunt inductor and series capacitor impedances,
// the inductor's shunt conductance, and the rectifier's input reactance
// magnitude — everything in the per-iteration transfer evaluation that
// does not depend on the rectifier load. Each value is produced by the
// exact expression its consumer would otherwise recompute, so serving
// it from the cache is bit-identical.
type freqXfer struct {
	valid  bool
	freq   float64
	zl, zc rf.Impedance
	gl     float64
	xp     float64 // 1/(ω·Cin): rectifier input reactance at freq
}

// xferFor returns the constants for freqHz: from the channel cache when
// it hits, built on the spot for other frequencies (the boot path's
// power-weighted mean frequency). ok is false when the network is not
// the high-pass L-section, in which case callers use the generic path.
func (s *Surface) xferFor(freqHz float64) (freqXfer, bool) {
	for i := range s.xfer {
		if s.xfer[i].valid && s.xfer[i].freq == freqHz {
			return s.xfer[i], true
		}
	}
	if !s.hpOK {
		return freqXfer{}, false
	}
	return s.buildXfer(freqHz), true
}

// buildXfer computes the constants with the same expressions
// HighPassLSection.PowerTransferFraction and
// Harvester.RectifierSeriesImpedance evaluate.
func (s *Surface) buildXfer(freqHz float64) freqXfer {
	zl := rf.InductorImpedance(s.hp.ShuntL, freqHz, s.hp.InductorQ)
	cp := s.h.Rect.InputCapacitance()
	return freqXfer{
		valid: true,
		freq:  freqHz,
		zl:    zl,
		zc:    rf.CapacitorImpedance(s.hp.SeriesC, freqHz, s.hp.CapacitorQ),
		gl:    real(1 / zl),
		xp:    1 / (2 * math.Pi * freqHz * cp),
	}
}

// rsiFromXp mirrors Harvester.RectifierSeriesImpedance with the
// frequency term precomputed: the parallel Rp ∥ Cp to series conversion
// on the same expressions.
func rsiFromXp(rp, xp float64) rf.Impedance {
	if math.IsInf(rp, 1) {
		// Unpowered rectifier: purely capacitive.
		return complex(0, -xp)
	}
	q := rp / xp
	rs := rp / (1 + q*q)
	xs := xp * q * q / (1 + q*q)
	return complex(rs, -xs)
}

// transferWith mirrors HighPassLSection.PowerTransferFraction with the
// load-independent terms served from x.
func transferWith(x *freqXfer, z rf.Impedance) float64 {
	zin := x.zc + rf.Parallel(x.zl, z)
	accepted := rf.MismatchLossFraction(zin, rf.Z0)
	if accepted < 0 {
		accepted = 0
	}
	gload := real(1 / z)
	if x.gl+gload <= 0 {
		return 0
	}
	return accepted * gload / (x.gl + gload)
}

// Stats reports how a surface was built, for tests and diagnostics.
type Stats struct {
	Epsilon        float64
	OpNodes        int
	BootNodes      int
	ExactEvals     int
	MaxMidpointErr float64 // worst certified midpoint error (relative)
	Unresolved     int     // width-floored intervals still over tolerance
}

// New builds the surface for h deterministically from its configuration.
// The build spends a few hundred exact operating-point solves per load
// line; amortized over a fleet run it is negligible, and For caches one
// surface per distinct harvester configuration process-wide.
func New(h *harvester.Harvester, opts Options) *Surface {
	opts = opts.withDefaults()
	s := &Surface{h: h, opts: opts}

	if hp, isHighPass := h.Match.(rf.HighPassLSection); isHighPass {
		s.hp = hp
		s.hpOK = true
		for i, chNum := range phy.PoWiFiChannels {
			s.xfer[i] = s.buildXfer(chNum.FreqHz())
		}
	}

	// Below vRelevant the converter cannot act on the rectifier voltage —
	// the battery-free pump needs 300 mV to start, the bq25570 needs
	// 100 mV to run — so v and i there cannot influence any output
	// (harvest is identically zero or pinned at the quiescent drain, and
	// PCHIP's no-overshoot property keeps the interpolant below the
	// thresholds wherever the exact curve is). Waiving certification
	// there matters: v(a) turns near-vertical and i(a) jumps where the
	// rectifier first meets the idle-leak load line, and refining those
	// sub-threshold features would burn the entire node budget on digits
	// no output depends on.
	vRelevant := 0.25 // just under the Seiko 300 mV startup threshold
	if h.Version != harvester.BatteryFree {
		vRelevant = 0.09 // just under the bq25570's 100 mV operating floor
	}
	subThreshold := func(exact []float64) bool { return exact[curveV] < vRelevant }

	// Per-curve error budgets. The harvest maps amplify v errors by at
	// most v² (Seiko) and are linear in i (bq25570), so those curves get
	// ε/8 and ε/4; ln Rp drives the accepted-power fixed point whose
	// amplification through the harvest knee is larger, so it gets the
	// full safety factor. The absolute floors mark where digits stop
	// being physics: a nanovolt on a volt-scale node, a picoamp against
	// microamp loads, ε/16 relative on Rp.
	eps := opts.Epsilon
	vSpec := curveSpec{name: "v", relTol: eps / 8, absTol: 1e-9, skip: subThreshold}
	iSpec := curveSpec{name: "i", relTol: eps / 4, absTol: 1e-12, skip: subThreshold}
	rpSpec := curveSpec{name: "lnRp", absTol: eps / safetyFactor}
	base := buildSpec{
		xMin:      math.Log(opts.AMinW),
		xMax:      math.Log(opts.AMaxW),
		initNodes: 129,
		maxNodes:  opts.MaxNodes,
		minWidth:  1e-6,
		maxPasses: 100,
		curves:    []curveSpec{vSpec, iSpec, rpSpec},
	}

	opSpec := base
	opSpec.eval = func(x float64) []float64 {
		a := math.Exp(x)
		v, i := h.Rect.OperatingPoint(a, h.ConverterLoad())
		rp := h.Rect.InputResistance(a, v)
		return []float64{v, i, math.Log(rp)}
	}
	s.op = buildGrid(opSpec)

	if h.Version == harvester.BatteryFree {
		bootSpec := base
		// The boot check reads only the startup voltage (and the input
		// resistance that locates the accepted-power fixed point); the
		// idle-leak current is constant by construction and never read.
		bootI := iSpec
		bootI.skip = func([]float64) bool { return true }
		bootSpec.curves = []curveSpec{vSpec, bootI, rpSpec}
		bootSpec.eval = func(x float64) []float64 {
			a := math.Exp(x)
			leak := func(float64) float64 { return h.Seiko.IdleLeakA }
			v, i := h.Rect.OperatingPoint(a, leak)
			rp := h.Rect.InputResistance(a, v)
			return []float64{v, i, math.Log(rp)}
		}
		s.boot = buildGrid(bootSpec)
	}
	return s
}

// Epsilon returns the certified relative error bound.
func (s *Surface) Epsilon() float64 { return s.opts.Epsilon }

// Stats returns build diagnostics.
func (s *Surface) Stats() Stats {
	st := Stats{
		Epsilon:        s.opts.Epsilon,
		OpNodes:        len(s.op.xs),
		ExactEvals:     s.op.evals,
		MaxMidpointErr: s.op.maxMidErr,
		Unresolved:     s.op.unresolved,
	}
	if s.boot != nil {
		st.BootNodes = len(s.boot.xs)
		st.ExactEvals += s.boot.evals
		st.MaxMidpointErr = math.Max(st.MaxMidpointErr, s.boot.maxMidErr)
		st.Unresolved += s.boot.unresolved
	}
	return st
}

// Grids exposes the monotone abscissae of the operating and startup
// grids (ln accepted watts) for property tests; the returned slices must
// not be modified.
func (s *Surface) Grids() (op, boot []float64) {
	if s.boot != nil {
		boot = s.boot.xs
	}
	return s.op.xs, boot
}

// interpAt evaluates grid curves v, i and rp at accepted power a.
func interpAt(g *grid, a float64) (v, i, rp float64, ok bool) {
	if a <= 0 {
		return 0, 0, 0, false
	}
	x := math.Log(a)
	lo, ok := g.bracket(x)
	if !ok {
		return 0, 0, 0, false
	}
	v = g.atIdx(curveV, lo, x)
	i = g.atIdx(curveI, lo, x)
	return v, i, math.Exp(g.atIdx(curveLnRp, lo, x)), true
}

// interpVIAt returns the voltage and current curves at accepted power a
// (the fixed points' closing query, which never consumes Rp), warm-
// started from the iteration's bracket hint.
func interpVIAt(g *grid, a float64, hint int) (v, i float64, ok bool) {
	if a <= 0 {
		return 0, 0, false
	}
	x := math.Log(a)
	lo, ok := g.bracketHint(x, hint)
	if !ok {
		return 0, 0, false
	}
	return g.atIdx(curveV, lo, x), g.atIdx(curveI, lo, x), true
}

// interpRpAt returns only the parallel-resistance curve at accepted
// power a — the single value the fixed-point iterations consume, so the
// loop pays one search and one Hermite evaluation per step. hint warm-
// starts the interval search across iterations (pass a variable holding
// -1 initially).
func interpRpAt(g *grid, a float64, hint *int) (rp float64, ok bool) {
	if a <= 0 {
		return 0, false
	}
	x := math.Log(a)
	lo, ok := g.bracketHint(x, *hint)
	if !ok {
		return 0, false
	}
	*hint = lo
	return math.Exp(g.atIdx(curveLnRp, lo, x)), true
}

// nearSeikoThreshold reports whether an interpolated rectifier voltage
// sits inside the guard band of a battery-free threshold at thresholdV
// (the pump's startup voltage, possibly shifted by droop). Within the
// band the chain's behavior is discontinuous in v, so the caller must
// resolve the query with the exact solver.
func (s *Surface) nearSeikoThreshold(v, thresholdV float64) bool {
	return math.Abs(v-thresholdV) <= s.opts.VBandV
}

// Outcome classifies how the surface answered one query — telemetry
// reads it; the answer itself is identical either way.
type Outcome uint8

const (
	// OutcomeHit: answered from the interpolation grids within the
	// certified ε bound.
	OutcomeHit Outcome = iota
	// OutcomeExact: the query left the grid domain (or the assembly has
	// no fast path) and was re-solved exactly.
	OutcomeExact
	// OutcomeGuardBand: the interpolated rectifier voltage landed
	// within the guard band of the Seiko startup threshold, where the
	// chain is discontinuous, so the exact solver decided.
	OutcomeGuardBand
)

// multiChannelOperatingPoint mirrors Harvester.MultiChannelOperatingPoint
// — same starting point, damping, iteration count and stop tolerance —
// with the interpolated Rp replacing the nested rectifier solves. Any
// outcome other than OutcomeHit means the result is unusable and the
// caller must fall back to the exact solver.
func (s *Surface) multiChannelOperatingPoint(chans []harvester.ChannelPower) (harvester.Operating, Outcome) {
	if len(chans) == 0 {
		return harvester.Operating{}, OutcomeHit
	}
	total := 0.0
	for _, c := range chans {
		total += 0.8 * c.PowerW
	}
	// Hoist each channel's load-independent constants out of the fixed
	// point: frequencies do not change across iterations.
	var xfs [3]freqXfer
	fast := len(chans) <= len(xfs)
	if fast {
		for j, c := range chans {
			var ok bool
			if xfs[j], ok = s.xferFor(c.FreqHz); !ok {
				fast = false
				break
			}
		}
	}
	hint := -1
	for iter := 0; iter < 8; iter++ {
		rp, ok := interpRpAt(s.op, total, &hint)
		if !ok {
			return harvester.Operating{}, OutcomeExact
		}
		next := 0.0
		for j, c := range chans {
			if c.PowerW <= 0 {
				continue
			}
			if fast {
				next += c.PowerW * transferWith(&xfs[j], rsiFromXp(rp, xfs[j].xp))
			} else {
				z := s.h.RectifierSeriesImpedance(rp, c.FreqHz)
				next += c.PowerW * s.h.Match.PowerTransferFraction(z, c.FreqHz)
			}
		}
		if math.Abs(next-total) < 1e-12 {
			total = next
			break
		}
		total = 0.5*total + 0.5*next
	}
	v, i, ok := interpVIAt(s.op, total, hint)
	if !ok {
		return harvester.Operating{}, OutcomeExact
	}
	if s.h.Version == harvester.BatteryFree && s.nearSeikoThreshold(v, s.h.Seiko.StartupV) {
		// The Seiko output switches on discontinuously at the startup
		// threshold; inside the guard band only the exact solver can
		// place v on the right side.
		return harvester.Operating{}, OutcomeGuardBand
	}
	return harvester.Operating{AcceptedW: total, VRect: v, IRect: i, RectDCW: v * i,
		HarvestedW: s.h.ConverterHarvest(v, i)}, OutcomeHit
}

// BurstyOperating is the surface-accelerated counterpart of
// Harvester.BurstyOperating: identical burst conditioning and duty-cycle
// scaling (shared code), with the rectifier solve served from the grid.
// Falls back to the exact solver outside the grid domain or inside the
// Seiko guard band.
func (s *Surface) BurstyOperating(chans []harvester.ChannelPower, occupancy []float64) harvester.Operating {
	op, _ := s.BurstyOperatingOutcome(chans, occupancy)
	return op
}

// BurstyOperatingOutcome is BurstyOperating plus how the query was
// answered — from the grids, or by the exact solver after a domain exit
// or guard-band trigger (the fallback already applied; the Operating is
// final either way). Trivial queries the surface answers closed-form
// (idle bins, degenerate inputs) count as hits.
func (s *Surface) BurstyOperatingOutcome(chans []harvester.ChannelPower, occupancy []float64) (harvester.Operating, Outcome) {
	if len(chans) == 0 || len(chans) != len(occupancy) {
		return harvester.Operating{}, OutcomeHit
	}
	cond, anyActive, ok := harvester.BurstyConditional(chans, occupancy)
	if !ok {
		return s.h.IdleOperating(), OutcomeHit
	}
	op, out := s.multiChannelOperatingPoint(cond)
	if out != OutcomeHit {
		return s.h.BurstyOperating(chans, occupancy), out
	}
	return s.h.FinishBursty(op, anyActive), OutcomeHit
}

// CanBootBursty is the surface-accelerated counterpart of
// Harvester.CanBootBursty. The threshold comparison itself is exact; the
// startup voltage comes from the idle-leak grid, and any query whose
// interpolated voltage lands within the guard band of the (droop-shifted)
// threshold is resolved by the exact solver, so the boolean is always
// bit-identical to the exact path.
func (s *Surface) CanBootBursty(chans []harvester.ChannelPower, occupancy []float64) bool {
	boots, _ := s.CanBootBurstyOutcome(chans, occupancy)
	return boots
}

// CanBootBurstyOutcome is CanBootBursty plus how the query was answered;
// the boolean is bit-identical to the exact path in every case.
// Non-battery-free assemblies and dead boot drives decide closed-form
// and count as hits.
func (s *Surface) CanBootBurstyOutcome(chans []harvester.ChannelPower, occupancy []float64) (bool, Outcome) {
	if s.h.Version != harvester.BatteryFree {
		return true, OutcomeHit
	}
	condW, freq, droop, ok := s.h.BootDrive(chans, occupancy)
	if !ok {
		return false, OutcomeHit
	}
	v, fast := s.startupVoltage(condW, freq)
	threshold := s.h.Seiko.StartupV + droop
	if !fast {
		return s.h.StartupVoltage(condW, freq) >= threshold, OutcomeExact
	}
	if s.nearSeikoThreshold(v, threshold) {
		return s.h.StartupVoltage(condW, freq) >= threshold, OutcomeGuardBand
	}
	return v >= threshold, OutcomeHit
}

// startupVoltage mirrors Harvester.StartupVoltage with grid lookups.
func (s *Surface) startupVoltage(incidentW, freqHz float64) (float64, bool) {
	if incidentW <= 0 {
		return 0, true
	}
	acc := 0.8 * incidentW
	// The frequency is fixed for the whole fixed point; hoist its
	// constants once.
	xf, fast := s.xferFor(freqHz)
	hint := -1
	for i := 0; i < 8; i++ {
		rp, ok := interpRpAt(s.boot, acc, &hint)
		if !ok {
			return 0, false
		}
		var next float64
		if fast {
			next = incidentW * transferWith(&xf, rsiFromXp(rp, xf.xp))
		} else {
			z := s.h.RectifierSeriesImpedance(rp, freqHz)
			next = incidentW * s.h.Match.PowerTransferFraction(z, freqHz)
		}
		if math.Abs(next-acc) < 1e-12 {
			acc = next
			break
		}
		acc = 0.5*acc + 0.5*next
	}
	v, _, ok := interpVIAt(s.boot, acc, hint)
	return v, ok
}

// Evaluate returns the battery-free-style (rate-relevant) outputs of the
// chain under bursty drive: whether the chain boots and its net
// harvested power. It exists so callers outside core can exercise the
// exact contract the property tests certify.
func (s *Surface) Evaluate(chans []harvester.ChannelPower, occupancy []float64) (netW float64, boots bool) {
	if !s.CanBootBursty(chans, occupancy) {
		return 0, false
	}
	return s.BurstyOperating(chans, occupancy).HarvestedW, true
}

// EvaluateOutcome is the batch kernel's per-bin entry point: the boot
// check and (when it passes) the operating solve in one call, with both
// query outcomes reported for telemetry. The answers are produced by the
// exact same internal queries as CanBootBurstyOutcome followed by
// BurstyOperatingOutcome, so a loop over EvaluateOutcome is bit-identical
// to the two-call form bin for bin. opQueried reports whether the
// operating solve ran at all — a chain that cannot boot short-circuits
// with (0, false) and only the boot outcome is meaningful.
func (s *Surface) EvaluateOutcome(chans []harvester.ChannelPower, occupancy []float64) (netW float64, boots bool, bootOut, opOut Outcome, opQueried bool) {
	boots, bootOut = s.CanBootBurstyOutcome(chans, occupancy)
	if !boots {
		return 0, false, bootOut, OutcomeHit, false
	}
	op, opOut := s.BurstyOperatingOutcome(chans, occupancy)
	return op.HarvestedW, true, bootOut, opOut, true
}
