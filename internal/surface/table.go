package surface

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// curveSpec describes one function tabulated on a shared grid and the
// accuracy the refinement must certify for it at interval midpoints: an
// interval passes when |interp − exact| ≤ max(relTol·|exact|, absTol).
type curveSpec struct {
	// name labels the curve in diagnostics.
	name string
	// relTol is the relative midpoint tolerance.
	relTol float64
	// absTol is the absolute error below which the curve's digits stop
	// mattering physically (bisection noise near zeros, sub-picoamp
	// currents): without it, values crossing zero would demand infinite
	// resolution. Setting relTol to zero makes the criterion purely
	// absolute, which is how ln Rp — itself already a relative measure of
	// Rp — is certified.
	absTol float64
	// skip, when set, exempts a sample point from this curve's error
	// criterion: an interval is skipped only when skip holds at both
	// endpoints and the midpoint, so intervals straddling a relevance
	// boundary stay certified. This is how the build avoids burning its
	// node budget resolving regions whose values cannot influence any
	// output — e.g. the rectifier voltage far below every converter
	// threshold, where the harvest is identically zero (battery-free) or
	// pinned at the quiescent drain (bq25570) no matter what v is.
	// PCHIP's no-overshoot property still bounds the interpolant by the
	// exact node values there, which is all thresholding needs.
	skip func(exact []float64) bool
}

// grid is a shared, adaptively refined, strictly increasing set of
// abscissae with several curves interpolated over it by monotone cubic
// Hermite splines (Fritsch–Carlson PCHIP). PCHIP preserves monotonicity
// on monotone data and never overshoots the bracketing node values, which
// is what makes the interpolated surface safe to threshold against
// physical cutoffs.
//
// A grid is immutable after build and safe for concurrent readers.
type grid struct {
	xs     []float64   // strictly increasing abscissae
	ys     [][]float64 // ys[c][i]: curve c at xs[i]
	slopes [][]float64 // PCHIP slopes, same shape as ys

	// refinement outcome, for diagnostics and tests
	unresolved int     // intervals that hit the width floor before meeting tol
	maxMidErr  float64 // worst midpoint error as a fraction of its tolerance (≤ 1 = certified)
	evals      int     // exact-solver evaluations spent building
}

// buildSpec parameterizes an adaptive build.
type buildSpec struct {
	xMin, xMax float64
	initNodes  int     // initial uniform node count (≥ 2)
	maxNodes   int     // refinement stops adding nodes past this
	minWidth   float64 // intervals narrower than this are not split further
	maxPasses  int
	curves     []curveSpec
	// eval returns the exact curve values at x; it must be a pure
	// deterministic function of x so the built grid depends only on the
	// spec, never on evaluation order or parallelism.
	eval func(x float64) []float64
}

// buildGrid runs the adaptive refinement: start from a uniform grid,
// then repeatedly test every interval's midpoint against the exact
// solver and insert the midpoints that miss the tolerance. Midpoint
// evaluations are cached, so a tested-and-passed midpoint costs nothing
// when retested after nearby insertions reshape the spline.
func buildGrid(spec buildSpec) *grid {
	if spec.initNodes < 2 {
		spec.initNodes = 2
	}
	nCurves := len(spec.curves)
	g := &grid{}
	cache := make(map[float64][]float64)
	var mu sync.Mutex

	evalCached := func(x float64) []float64 {
		mu.Lock()
		v, ok := cache[x]
		mu.Unlock()
		if ok {
			return v
		}
		v = spec.eval(x)
		mu.Lock()
		cache[x] = v
		g.evals++
		mu.Unlock()
		return v
	}
	// evalAll resolves a batch of abscissae in parallel; the resulting
	// grid is identical at any parallelism because each node value is a
	// pure function of its abscissa.
	evalAll := func(batch []float64) {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(batch) {
			workers = len(batch)
		}
		if workers <= 1 {
			for _, x := range batch {
				evalCached(x)
			}
			return
		}
		var wg sync.WaitGroup
		jobs := make(chan float64)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for x := range jobs {
					evalCached(x)
				}
			}()
		}
		for _, x := range batch {
			jobs <- x
		}
		close(jobs)
		wg.Wait()
	}

	xs := make([]float64, spec.initNodes)
	for i := range xs {
		xs[i] = spec.xMin + (spec.xMax-spec.xMin)*float64(i)/float64(spec.initNodes-1)
	}
	evalAll(xs)

	for pass := 0; pass < spec.maxPasses; pass++ {
		ys := gatherCurves(xs, cache, nCurves)
		slopes := pchipSlopes(xs, ys)

		mids := make([]float64, 0, len(xs)-1)
		for i := 0; i+1 < len(xs); i++ {
			if xs[i+1]-xs[i] > spec.minWidth {
				mids = append(mids, 0.5*(xs[i]+xs[i+1]))
			}
		}
		evalAll(mids)

		var insert []float64
		for i := 0; i+1 < len(xs); i++ {
			if xs[i+1]-xs[i] <= spec.minWidth {
				continue
			}
			xm := 0.5 * (xs[i] + xs[i+1])
			exact := cache[xm]
			for c := 0; c < nCurves; c++ {
				if skipInterval(spec.curves[c], cache[xs[i]], cache[xs[i+1]], exact) {
					continue
				}
				got := hermite(xs[i], xs[i+1], ys[c][i], ys[c][i+1], slopes[c][i], slopes[c][i+1], xm)
				if errRatio(spec.curves[c], got, exact[c]) > 1 {
					insert = append(insert, xm)
					break
				}
			}
		}
		if len(insert) == 0 || len(xs) >= spec.maxNodes {
			break
		}
		xs = append(xs, insert...)
		sort.Float64s(xs)
		xs = grade(xs, spec.minWidth)
		var back []float64
		for _, x := range xs {
			mu.Lock()
			_, ok := cache[x]
			mu.Unlock()
			if !ok {
				back = append(back, x)
			}
		}
		evalAll(back)
	}

	g.xs = xs
	g.ys = gatherCurves(xs, cache, nCurves)
	g.slopes = pchipSlopes(xs, g.ys)

	// Certify: record the worst midpoint error the final spline leaves,
	// and count intervals pinned at the width floor that still miss the
	// tolerance (genuine kinks; callers band those off at query time).
	for i := 0; i+1 < len(xs); i++ {
		xm := 0.5 * (xs[i] + xs[i+1])
		exact, ok := cache[xm]
		if !ok {
			exact = evalCached(xm)
		}
		worst := 0.0
		for c := 0; c < nCurves; c++ {
			if skipInterval(spec.curves[c], cache[xs[i]], cache[xs[i+1]], exact) {
				continue
			}
			got := hermite(xs[i], xs[i+1], g.ys[c][i], g.ys[c][i+1], g.slopes[c][i], g.slopes[c][i+1], xm)
			if q := errRatio(spec.curves[c], got, exact[c]); q > worst {
				worst = q
			}
		}
		if worst > g.maxMidErr {
			g.maxMidErr = worst
		}
		if worst > 1 {
			g.unresolved++
		}
	}
	return g
}

// grade enforces a 2:1 bound on adjacent interval width ratios by
// splitting the wider neighbor until the mesh is balanced. Without this,
// refinement never terminates: a node inserted into a dense cluster
// perturbs the PCHIP slopes of its much wider neighbors (the limiter
// weights slopes toward the short side's secant), those neighbors fail
// the midpoint test on the next pass, splitting them perturbs the next
// ring outward, and the refinement front marches forever. A balanced
// mesh keeps the slope perturbation of any insertion local and
// shrinking, so the midpoint test converges. Splitting is deterministic
// (pure function of the sorted abscissae), preserving build determinism.
func grade(xs []float64, minWidth float64) []float64 {
	const ratio = 2.000001 // slack so exact powers of two don't churn
	for {
		var insert []float64
		for i := 0; i+1 < len(xs); i++ {
			w := xs[i+1] - xs[i]
			if w <= minWidth {
				continue
			}
			left := math.Inf(1)
			if i > 0 {
				left = xs[i] - xs[i-1]
			}
			right := math.Inf(1)
			if i+2 < len(xs) {
				right = xs[i+2] - xs[i+1]
			}
			if w > ratio*left || w > ratio*right {
				insert = append(insert, 0.5*(xs[i]+xs[i+1]))
			}
		}
		if len(insert) == 0 {
			return xs
		}
		xs = append(xs, insert...)
		sort.Float64s(xs)
	}
}

// skipInterval reports whether a curve's criterion is waived on an
// interval: only when its skip predicate holds at both endpoints and the
// midpoint.
func skipInterval(c curveSpec, lo, hi, mid []float64) bool {
	return c.skip != nil && c.skip(lo) && c.skip(hi) && c.skip(mid)
}

// errRatio returns the midpoint error as a fraction of the curve's
// tolerance; values ≤ 1 pass.
func errRatio(c curveSpec, got, exact float64) float64 {
	return math.Abs(got-exact) / math.Max(c.relTol*math.Abs(exact), c.absTol)
}

func gatherCurves(xs []float64, cache map[float64][]float64, nCurves int) [][]float64 {
	ys := make([][]float64, nCurves)
	for c := range ys {
		ys[c] = make([]float64, len(xs))
	}
	for i, x := range xs {
		v := cache[x]
		for c := 0; c < nCurves; c++ {
			ys[c][i] = v[c]
		}
	}
	return ys
}

// pchipSlopes returns monotone-limited Hermite slopes for every curve:
// interval-weighted parabolic estimates (second-order accurate on
// non-uniform meshes) clamped by the Hyman/de Boor–Swartz monotonicity
// condition — zero across local extrema, magnitude at most three times
// the smaller adjacent secant. The parabolic estimate matters: the
// classic Fritsch–Carlson harmonic mean biases slopes toward the short
// side's secant at fine/coarse mesh transitions, which poisons the fine
// side's interpolant and makes adaptive refinement march across smooth
// regions instead of terminating. The clamp preserves the property the
// thresholding logic relies on: per-interval monotone interpolation that
// never overshoots the bracketing node values.
func pchipSlopes(xs []float64, ys [][]float64) [][]float64 {
	n := len(xs)
	slopes := make([][]float64, len(ys))
	for c, y := range ys {
		m := make([]float64, n)
		if n == 2 {
			d := (y[1] - y[0]) / (xs[1] - xs[0])
			m[0], m[1] = d, d
			slopes[c] = m
			continue
		}
		h := make([]float64, n-1)
		d := make([]float64, n-1)
		for i := 0; i+1 < n; i++ {
			h[i] = xs[i+1] - xs[i]
			d[i] = (y[i+1] - y[i]) / h[i]
		}
		for i := 1; i+1 < n; i++ {
			m[i] = limitSlope((h[i]*d[i-1]+h[i-1]*d[i])/(h[i-1]+h[i]), d[i-1], d[i])
		}
		m[0] = limitSlope(((2*h[0]+h[1])*d[0]-h[0]*d[1])/(h[0]+h[1]), d[0], d[0])
		m[n-1] = limitSlope(((2*h[n-2]+h[n-3])*d[n-2]-h[n-2]*d[n-3])/(h[n-2]+h[n-3]), d[n-2], d[n-2])
		slopes[c] = m
	}
	return slopes
}

// limitSlope applies the Hyman monotonicity clamp to a slope estimate at
// a node between secants d0 and d1: zero at local extrema, sign matching
// the secants, magnitude at most 3·min(|d0|, |d1|).
func limitSlope(m, d0, d1 float64) float64 {
	if d0*d1 <= 0 {
		return 0
	}
	lim := 3 * math.Min(math.Abs(d0), math.Abs(d1))
	if m*d0 <= 0 {
		return 0
	}
	if math.Abs(m) > lim {
		return math.Copysign(lim, d0)
	}
	return m
}

// hermite evaluates the cubic Hermite segment on [x0, x1] at x.
func hermite(x0, x1, y0, y1, m0, m1, x float64) float64 {
	h := x1 - x0
	t := (x - x0) / h
	t2 := t * t
	t3 := t2 * t
	return y0*(2*t3-3*t2+1) + h*m0*(t3-2*t2+t) + y1*(-2*t3+3*t2) + h*m1*(t3-t2)
}

// at evaluates curve c at x. ok is false outside the grid domain — the
// caller must fall back to the exact solver there, never extrapolate.
func (g *grid) at(c int, x float64) (float64, bool) {
	lo, ok := g.bracket(x)
	if !ok {
		return 0, false
	}
	return g.atIdx(c, lo, x), true
}

// bracket binary-searches for the interval [xs[lo], xs[lo+1]] containing
// x, so multi-curve queries at one abscissa pay for a single search.
func (g *grid) bracket(x float64) (int, bool) {
	xs := g.xs
	if x < xs[0] || x > xs[len(xs)-1] || math.IsNaN(x) {
		return 0, false
	}
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// bracketHint is bracket with a warm start: when x still falls in the
// hinted interval it returns immediately with the exact interval the
// binary search would pick (xs[hint] <= x strictly below xs[hint+1] —
// the half-open test keeps node-exact queries on the same side the
// search puts them). Fixed-point iterations whose abscissa drifts
// slowly hit the fast path almost every step.
func (g *grid) bracketHint(x float64, hint int) (int, bool) {
	xs := g.xs
	if hint >= 0 && hint+1 < len(xs) && xs[hint] <= x && x < xs[hint+1] {
		return hint, true
	}
	return g.bracket(x)
}

// atIdx evaluates curve c at x inside the pre-located interval lo.
func (g *grid) atIdx(c, lo int, x float64) float64 {
	return hermite(g.xs[lo], g.xs[lo+1], g.ys[c][lo], g.ys[c][lo+1], g.slopes[c][lo], g.slopes[c][lo+1], x)
}
