package surface

import (
	"math"
	"testing"

	"repro/internal/harvester"
)

// TestBuildDeterministic pins the surface's core contract: two builds
// from the same harvester configuration produce identical grids — node
// for node, bit for bit — so sharing a surface across fleet workers
// cannot perturb results.
func TestBuildDeterministic(t *testing.T) {
	h := harvester.NewBatteryFree()
	a := New(h, DefaultOptions())
	b := New(harvester.NewBatteryFree(), DefaultOptions())
	for name, pair := range map[string][2]*grid{"op": {a.op, b.op}, "boot": {a.boot, b.boot}} {
		ga, gb := pair[0], pair[1]
		if len(ga.xs) != len(gb.xs) {
			t.Fatalf("%s: node counts differ: %d vs %d", name, len(ga.xs), len(gb.xs))
		}
		for i := range ga.xs {
			if ga.xs[i] != gb.xs[i] {
				t.Fatalf("%s: node %d differs: %v vs %v", name, i, ga.xs[i], gb.xs[i])
			}
			for c := range ga.ys {
				if ga.ys[c][i] != gb.ys[c][i] {
					t.Fatalf("%s: curve %d value %d differs", name, c, i)
				}
			}
		}
	}
}

// TestRegistrySharesBuilds pins that For returns one surface per
// distinct harvester configuration, across distinct device instances.
func TestRegistrySharesBuilds(t *testing.T) {
	s1 := For(harvester.NewBatteryFree())
	s2 := For(harvester.NewBatteryFree())
	if s1 != s2 {
		t.Error("two battery-free harvesters got different surfaces")
	}
	s3 := For(harvester.NewBatteryCharging())
	if s3 == s1 {
		t.Error("battery-free and battery-charging harvesters share a surface")
	}
}

// TestEnabledToggle pins the global escape hatch.
func TestEnabledToggle(t *testing.T) {
	if !Enabled() {
		t.Fatal("surface must be enabled by default")
	}
	SetEnabled(false)
	if Enabled() {
		t.Error("SetEnabled(false) did not take")
	}
	SetEnabled(true)
}

// TestOutOfDomainFallsBackToExact: a drive past the grid's upper bound
// must produce exactly the direct solver's result (the fallback calls
// it), never an extrapolation.
func TestOutOfDomainFallsBackToExact(t *testing.T) {
	h := harvester.NewBatteryFree()
	s := New(h, Options{AMinW: 1e-9, AMaxW: 1e-5})
	chans := []harvester.ChannelPower{{FreqHz: 2.437e9, PowerW: 1e-3}}
	occ := []float64{0.9}
	exact := h.BurstyOperating(chans, occ)
	got := s.BurstyOperating(chans, occ)
	if got != exact {
		t.Errorf("out-of-domain query did not match exact fallback:\n got %+v\nwant %+v", got, exact)
	}
	if gotBoot, wantBoot := s.CanBootBursty(chans, occ), h.CanBootBursty(chans, occ); gotBoot != wantBoot {
		t.Errorf("out-of-domain boot decision %v, exact %v", gotBoot, wantBoot)
	}
}

// TestOptionsDefaults pins Options zero-value handling and the ε
// default the issue specifies.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epsilon != 1e-6 {
		t.Errorf("default epsilon = %g, want 1e-6", o.Epsilon)
	}
	if o.AMinW <= 0 || o.AMaxW <= o.AMinW || o.MaxNodes <= 0 || o.VBandV <= 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
	custom := Options{Epsilon: 1e-3}.withDefaults()
	if custom.Epsilon != 1e-3 {
		t.Errorf("custom epsilon overridden: %+v", custom)
	}
}

// TestConfigurableEpsilon: a surface built with a loose ε still matches
// the exact solver within that ε (sanity that the bound tracks the
// option, not a constant).
func TestConfigurableEpsilon(t *testing.T) {
	h := harvester.NewBatteryFree()
	s := New(h, Options{Epsilon: 1e-3})
	if s.Epsilon() != 1e-3 {
		t.Fatalf("Epsilon() = %g", s.Epsilon())
	}
	chans := []harvester.ChannelPower{{FreqHz: 2.437e9, PowerW: 5e-5}}
	occ := []float64{0.8}
	exact := h.BurstyOperating(chans, occ).HarvestedW
	got := s.BurstyOperating(chans, occ).HarvestedW
	if err := math.Abs(got - exact); err > 1e-3*math.Max(math.Abs(exact), 1e-11) {
		t.Errorf("loose surface error %g exceeds its ε: got %g want %g", err, got, exact)
	}
}

// TestIdleAndDegenerateDrives pins the edge semantics shared with the
// exact solver: empty channel lists, mismatched lengths, zero occupancy.
func TestIdleAndDegenerateDrives(t *testing.T) {
	for _, mk := range []func() *harvester.Harvester{harvester.NewBatteryFree, harvester.NewBatteryCharging} {
		h := mk()
		s := For(h)
		cases := []struct {
			name  string
			chans []harvester.ChannelPower
			occ   []float64
		}{
			{"empty", nil, nil},
			{"mismatch", []harvester.ChannelPower{{FreqHz: 2.437e9, PowerW: 1e-5}}, []float64{0.5, 0.5}},
			{"silent", []harvester.ChannelPower{{FreqHz: 2.437e9, PowerW: 1e-5}}, []float64{0}},
			{"negative-occ", []harvester.ChannelPower{{FreqHz: 2.437e9, PowerW: 1e-5}}, []float64{-0.3}},
		}
		for _, tc := range cases {
			if got, want := s.BurstyOperating(tc.chans, tc.occ), h.BurstyOperating(tc.chans, tc.occ); got != want {
				t.Errorf("%v/%s: BurstyOperating %+v, exact %+v", h.Version, tc.name, got, want)
			}
			if got, want := s.CanBootBursty(tc.chans, tc.occ), h.CanBootBursty(tc.chans, tc.occ); got != want {
				t.Errorf("%v/%s: CanBootBursty %v, exact %v", h.Version, tc.name, got, want)
			}
		}
	}
}

// TestStatsCertified: the default build must certify every interval —
// at most a handful of width-floored kink intervals may exceed the
// per-curve midpoint tolerance, and even those by a small factor
// (absorbed by the safety factor between node tolerance and ε).
func TestStatsCertified(t *testing.T) {
	for _, mk := range []func() *harvester.Harvester{harvester.NewBatteryFree, harvester.NewBatteryCharging} {
		s := For(mk())
		st := s.Stats()
		if st.OpNodes < 100 {
			t.Errorf("%+v: implausibly small grid", st)
		}
		if st.Unresolved > 8 {
			t.Errorf("too many unresolved intervals: %+v", st)
		}
		if st.MaxMidpointErr > float64(safetyFactor)/2 {
			t.Errorf("worst midpoint error %.1f× tolerance eats the whole safety margin (%+v)", st.MaxMidpointErr, st)
		}
	}
}
