package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestNilSafety pins the disabled state: every method on a nil
// Recorder, Worker or HomeTrace must be a no-op with a sane return, so
// call sites need no guards.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Span("run")() // closer must also be callable
	if w := r.NewWorker(); w != nil {
		t.Fatalf("nil Recorder NewWorker = %v, want nil", w)
	}
	r.CommitHome(nil, true)
	if s := r.Summary(); !reflect.DeepEqual(s, Summary{}) {
		t.Fatalf("nil Recorder Summary = %+v, want zero", s)
	}

	var w *Worker
	if w.Enabled() {
		t.Fatal("nil Worker Enabled() = true")
	}
	ht := w.StartHome(3, "fleet/home/3", 1)
	if ht != nil {
		t.Fatalf("nil Worker StartHome = %v, want nil", ht)
	}
	w.EndHome(ht)

	// ht is nil: the full instrumentation surface must ignore it.
	ht.SetBins(24)
	ht.SetBin(5)
	ht.BinSimulated(5, 100)
	ht.SurfaceExact()
	ht.SurfaceGuard()
	ht.OccFit(1, 0.5)
	ht.HarvestFit(0.5)
	ht.GuardQuery(5, true)
	ht.Escalate(5, EscGuardDisagree)
	ht.Boot(2)
	ht.Brownout(3)
	ht.Fault("home.panic")
	ht.Retry(2)
	ht.Quarantine()
	ht.Kernel(100)
	ht.Stall(100)
	if ht.Index() != -1 || ht.Label() != "" || ht.Events() != 0 || ht.Escalations() != 0 {
		t.Fatal("nil HomeTrace accessors returned non-zero values")
	}
	if d := ht.Dump(); d != nil {
		t.Fatalf("nil HomeTrace Dump = %v, want nil", d)
	}
}

// TestNilAllocs pins the disabled-path allocation budget at zero: the
// hot-loop instrumentation calls must cost one nil check and nothing
// else.
func TestNilAllocs(t *testing.T) {
	var r *Recorder
	var w *Worker
	var ht *HomeTrace
	if n := testing.AllocsPerRun(100, func() {
		ht.BinSimulated(5, 100)
		ht.SurfaceExact()
		ht.SurfaceGuard()
		ht.GuardQuery(5, true)
		ht.Escalate(5, EscConsensusSplit)
		ht.SetBin(5)
		ht.Kernel(10)
		w.EndHome(ht)
		r.CommitHome(ht, false)
	}); n != 0 {
		t.Fatalf("nil-receiver instrumentation allocates %v/op, want 0", n)
	}
}

// TestRingWrap checks the flight recorder's fixed-size ring: the newest
// RingCap events survive oldest-first, the remainder is counted as
// dropped.
func TestRingWrap(t *testing.T) {
	r := NewRecorder()
	w := r.NewWorker()
	ht := w.StartHome(0, "fleet/home/0", 1)
	const n = DefaultRingCap + 10
	for bin := 0; bin < n; bin++ {
		ht.BinSimulated(bin, uint64(bin))
	}
	if got := ht.Events(); got != n {
		t.Fatalf("Events() = %d, want %d", got, n)
	}
	d := ht.Dump()
	if d.Dropped != n-DefaultRingCap {
		t.Fatalf("Dropped = %d, want %d", d.Dropped, n-DefaultRingCap)
	}
	if len(d.Events) != DefaultRingCap {
		t.Fatalf("len(Events) = %d, want %d", len(d.Events), DefaultRingCap)
	}
	for i, e := range d.Events {
		if want := i + (n - DefaultRingCap); e.Bin != want {
			t.Fatalf("ring[%d].Bin = %d, want %d (oldest-first)", i, e.Bin, want)
		}
	}
}

// TestStableNames pins the serialized reason and kind codes: reports
// and CI assertions key on these strings.
func TestStableNames(t *testing.T) {
	reasons := map[EscReason]string{
		EscConsensusSplit: "consensus-split",
		EscGuardDisagree:  "guard-disagree",
		EscOccFitUnstable: "occ-fit-unstable",
	}
	for r, want := range reasons {
		if got := r.String(); got != want {
			t.Errorf("EscReason(%d).String() = %q, want %q", r, got, want)
		}
	}
	kinds := map[EventKind]string{
		EvBinSim: "bin-sim", EvSurfaceExact: "surface-exact",
		EvSurfaceGuard: "surface-guard", EvOccFit: "occ-fit",
		EvHarvestFit: "harvest-fit", EvGuardQuery: "guard-query",
		EvEscalate: "escalate", EvBoot: "boot", EvBrownout: "brownout",
		EvFault: "fault", EvRetry: "retry", EvQuarantine: "quarantine",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestEventDetails checks the kind-specific serialization: escalations
// carry their reason code, channel fits their channel.
func TestEventDetails(t *testing.T) {
	r := NewRecorder()
	ht := r.NewWorker().StartHome(0, "fleet/home/0", 1)
	ht.Escalate(7, EscOccFitUnstable)
	ht.OccFit(2, 0.25)
	ht.Fault("home.slow")
	ev := ht.Dump().Events
	if ev[0].Detail != "occ-fit-unstable" || ev[0].Bin != 7 {
		t.Fatalf("escalate record = %+v", ev[0])
	}
	if ev[1].Detail != "ch2" || ev[1].Arg != 0.25 {
		t.Fatalf("occ-fit record = %+v", ev[1])
	}
	if ev[2].Detail != "home.slow" {
		t.Fatalf("fault record = %+v", ev[2])
	}
}

// TestInsertTop checks the bounded sorted insert used for retention.
func TestInsertTop(t *testing.T) {
	less := func(a, b *HomeTrace) bool {
		if a.escTotal != b.escTotal {
			return a.escTotal > b.escTotal
		}
		return a.idx < b.idx
	}
	var top []*HomeTrace
	for _, h := range []*HomeTrace{
		{idx: 0, escTotal: 2}, {idx: 1, escTotal: 9},
		{idx: 2, escTotal: 5}, {idx: 3, escTotal: 9}, {idx: 4, escTotal: 1},
	} {
		top = insertTop(top, h, 3, less)
	}
	got := []int{top[0].idx, top[1].idx, top[2].idx}
	// 9s first (tie to lower index), then the 5; the 2 and 1 fall off.
	if want := []int{1, 3, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("insertTop order = %v, want %v", got, want)
	}
}

// TestSummaryRetention checks the deterministic aggregates and the
// retention policy: failed homes always retained, survivors by
// escalation count, everything in home-index order.
func TestSummaryRetention(t *testing.T) {
	r := NewRecorder()
	r.topK = 2
	w := r.NewWorker()

	mk := func(idx, escBins int, reason EscReason) *HomeTrace {
		ht := w.StartHome(idx, "fleet/home/"+string(rune('0'+idx)), 1)
		ht.BinSimulated(0, 10)
		for b := 0; b < escBins; b++ {
			ht.Escalate(b, reason)
		}
		w.EndHome(ht)
		return ht
	}
	r.CommitHome(mk(0, 3, EscGuardDisagree), false)
	r.CommitHome(mk(1, 0, 0), false)
	r.CommitHome(mk(2, 5, EscConsensusSplit), false)
	r.CommitHome(mk(3, 4, EscOccFitUnstable), false)
	failed := mk(4, 0, 0)
	failed.Quarantine()
	r.CommitHome(failed, true)

	s := r.Summary()
	if s.HomesTraced != 5 {
		t.Fatalf("HomesTraced = %d, want 5", s.HomesTraced)
	}
	if s.EscalatedBins != 12 {
		t.Fatalf("EscalatedBins = %d, want 12", s.EscalatedBins)
	}
	want := map[string]uint64{"consensus-split": 5, "guard-disagree": 3, "occ-fit-unstable": 4}
	if !reflect.DeepEqual(s.EscalationReasons, want) {
		t.Fatalf("EscalationReasons = %v, want %v", s.EscalationReasons, want)
	}
	// topK=2 keeps homes 2 and 3; home 4 failed; index order.
	if len(s.Retained) != 3 {
		t.Fatalf("Retained = %+v, want 3 homes", s.Retained)
	}
	for i, want := range []struct {
		idx int
		why string
	}{{2, "escalations"}, {3, "escalations"}, {4, "failed"}} {
		if s.Retained[i].Index != want.idx || s.Retained[i].Retained != want.why {
			t.Fatalf("Retained[%d] = {%d %q}, want {%d %q}",
				i, s.Retained[i].Index, s.Retained[i].Retained, want.idx, want.why)
		}
	}
	if s.Sched == nil || s.Sched.HomeWallMS.N != 5 {
		t.Fatalf("Sched = %+v, want wall N=5", s.Sched)
	}
}

// TestDominantSpan checks the wall-time attribution used by the slow
// homes tables.
func TestDominantSpan(t *testing.T) {
	cases := []struct {
		dur, kernel, stall int64
		want               string
	}{
		{100, 80, 0, "bin-batch"},
		{100, 10, 70, "stall"},
		{100, 10, 10, "other"},
	}
	for _, c := range cases {
		ht := &HomeTrace{durNS: c.dur, kernelNS: c.kernel, stallNS: c.stall}
		if got := ht.dominantSpan(); got != c.want {
			t.Errorf("dominantSpan(dur=%d kernel=%d stall=%d) = %q, want %q",
				c.dur, c.kernel, c.stall, got, c.want)
		}
	}
}

// TestWriteChrome checks the export is valid Chrome trace-event JSON
// with the expected span and instant structure; a nil recorder emits an
// empty-but-valid trace.
func TestWriteChrome(t *testing.T) {
	r := NewRecorder()
	end := r.Span(SpanRun)
	w := r.NewWorker()
	ht := w.StartHome(0, "fleet/home/0", 1)
	ht.SetBins(4)
	ht.BinSimulated(2, 50)
	ht.Kernel(1000)
	w.EndHome(ht)
	r.CommitHome(ht, true) // failed → retained → ring instants exported
	end()

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	count := map[string]int{}
	for _, e := range tr.TraceEvents {
		count[e.Ph+":"+e.Name]++
	}
	for _, want := range []string{"X:run", "X:home", "X:bin-batch", "i:bin-sim", "i:flight_recorder", "M:process_name", "M:thread_name"} {
		if count[want] == 0 {
			t.Errorf("export missing %q event (have %v)", want, count)
		}
	}

	buf.Reset()
	var nilRec *Recorder
	if err := nilRec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("nil-recorder export is not valid JSON: %v", err)
	}
}
