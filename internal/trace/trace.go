// Package trace is the run-scoped tracing layer for fleet simulations:
// hierarchical spans (run → phase → worker → home → bin-batch) with
// wall and CPU time, a fixed-size per-home flight recorder of
// structured events, machine-readable escalation reasons for the
// coarse tier, and a Chrome trace-event export that loads in Perfetto.
// It generalizes internal/telemetry's flat span list to a tree and its
// counters to per-home event forensics, under the same contract.
//
// # Determinism contract
//
// Tracing is strictly out of band: it draws no randomness, changes no
// event order, and never feeds back into the simulation, so enabling
// it leaves every simulation output byte-identical. Disabled (a nil
// *Recorder and therefore nil *Worker and *HomeTrace handles), every
// instrumentation call is a nil-receiver no-op — one branch, zero
// allocations — so the hot paths keep their allocation budgets.
//
// Like telemetry's work/sched split, the summary splits in two:
//
//   - Deterministic forensics — per-home event counts, flight-recorder
//     rings, escalation-reason totals, retention decisions — are keyed
//     to the simulation (bin indices, reason codes, attempt numbers),
//     never the clock, and fold through the fleet's reorder buffer in
//     home-index order, so they are bit-for-bit identical at any
//     worker count.
//   - Scheduling observations — raw spans, per-home wall times, the
//     top-K slowest homes — measure how the run was executed. They are
//     quarantined under the summary's "sched" section and must never
//     be compared across parallelism.
package trace

import "strconv"

// Flight-recorder defaults: the ring keeps the newest RingCap events
// per home (a day of hourly bins fits whole; bigger homes drop the
// oldest), and the recorder retains full rings for the DefaultTopK
// most-escalated and slowest homes beyond the always-retained failures.
const (
	DefaultRingCap = 64
	DefaultTopK    = 8
)

// EscReason is the machine-readable reason a coarse-tier proxied bin
// escalated to the exact event simulation. The coarse tier reports one
// per escalated bin; totals per reason are workers-invariant.
type EscReason uint8

const (
	// EscConsensusSplit: the surrounding anchors disagree on the
	// boot/silence verdict, so there is no consensus to certify.
	EscConsensusSplit EscReason = iota
	// EscGuardDisagree: the guard-band query contradicts the anchors'
	// verdict — the decision is not stable under the ±Guard swing.
	EscGuardDisagree
	// EscOccFitUnstable: the fitted harvest magnitude contradicts the
	// certified verdict's sign, so neither is trusted.
	EscOccFitUnstable

	numEscReasons = 3
)

// String returns the stable reason code used in summaries and reports.
func (r EscReason) String() string {
	switch r {
	case EscConsensusSplit:
		return "consensus-split"
	case EscGuardDisagree:
		return "guard-disagree"
	case EscOccFitUnstable:
		return "occ-fit-unstable"
	}
	return "unknown"
}

// EventKind classifies one flight-recorder event.
type EventKind uint8

const (
	// EvBinSim: a bin ran the packet-level event simulation; Arg is the
	// number of kernel events the window scheduled.
	EvBinSim EventKind = iota
	// EvSurfaceExact: an operating-point query left the interpolation
	// grid and re-solved exactly.
	EvSurfaceExact
	// EvSurfaceGuard: a query landed in the Seiko startup guard band
	// and deferred to the exact solver.
	EvSurfaceGuard
	// EvOccFit: the coarse tier fitted one channel's load→occupancy
	// response; Code is the channel index, Arg the fitted slope.
	EvOccFit
	// EvHarvestFit: the coarse tier fitted the occupancy→harvest
	// response; Arg is the fitted slope.
	EvHarvestFit
	// EvGuardQuery: a coarse guard-band query; Arg is 1 when the
	// verdict proved stable, 0 when it did not.
	EvGuardQuery
	// EvEscalate: a proxied bin escalated to the event simulation;
	// Code is the EscReason.
	EvEscalate
	// EvBoot / EvBrownout: a lifecycle device crossed its operating
	// threshold in this bin.
	EvBoot
	EvBrownout
	// EvFault: an armed faultinject failpoint fired; Note is the site.
	EvFault
	// EvRetry: the home re-attempted after a recovered panic; Arg is
	// the attempt number.
	EvRetry
	// EvQuarantine: the reducer quarantined the home under the skip
	// policy after its attempts were exhausted.
	EvQuarantine
)

// String returns the stable kind name used in summaries and exports.
func (k EventKind) String() string {
	switch k {
	case EvBinSim:
		return "bin-sim"
	case EvSurfaceExact:
		return "surface-exact"
	case EvSurfaceGuard:
		return "surface-guard"
	case EvOccFit:
		return "occ-fit"
	case EvHarvestFit:
		return "harvest-fit"
	case EvGuardQuery:
		return "guard-query"
	case EvEscalate:
		return "escalate"
	case EvBoot:
		return "boot"
	case EvBrownout:
		return "brownout"
	case EvFault:
		return "fault"
	case EvRetry:
		return "retry"
	case EvQuarantine:
		return "quarantine"
	}
	return "unknown"
}

// Event is one flight-recorder entry. Every field is derived from the
// deterministic simulation (bin indices, reason codes, event counts),
// never from the clock, so a home's ring is bit-for-bit identical at
// any worker count.
type Event struct {
	Kind EventKind
	// Bin is the logging-bin index the event is scoped to, -1 for
	// home-level events (faults, retries, quarantine, fits).
	Bin int32
	// Code is the kind-specific discriminant: the EscReason of an
	// EvEscalate, the channel index of an EvOccFit.
	Code uint8
	// Arg is the kind-specific magnitude (kernel events of an EvBinSim,
	// fitted slope of a fit, attempt number of an EvRetry).
	Arg float64
	// Note is the kind-specific identifier (the faultinject site of an
	// EvFault); empty otherwise.
	Note string
}

// record renders the event into its serialized form.
func (e Event) record() EventRecord {
	r := EventRecord{Kind: e.Kind.String(), Bin: int(e.Bin), Arg: e.Arg, Detail: e.Note}
	switch e.Kind {
	case EvEscalate:
		r.Detail = EscReason(e.Code).String()
	case EvOccFit:
		r.Detail = "ch" + strconv.Itoa(int(e.Code))
	}
	return r
}

// EventRecord is the serialized form of an Event, used by the report
// summary, the HomeError trace payload, and the Chrome export.
type EventRecord struct {
	Kind string `json:"kind"`
	// Bin is the logging-bin index, -1 for home-level events.
	Bin    int     `json:"bin"`
	Detail string  `json:"detail,omitempty"`
	Arg    float64 `json:"arg,omitempty"`
}

// Dump is one home's flight-recorder payload: the retained ring in
// oldest-first order plus the count of older events the fixed-size ring
// dropped. It is attached to fleet HomeErrors and to the Chrome export
// so a failed or escalating home carries its own forensics.
type Dump struct {
	Label   string        `json:"label"`
	Events  []EventRecord `json:"events,omitempty"`
	Dropped uint64        `json:"dropped,omitempty"`
}

// HomeTrace is one home's flight recorder: a fixed-size ring of
// structured events plus deterministic per-home tallies and — for the
// scheduling stream only — the home's wall-time breakdown. A nil
// *HomeTrace (tracing disabled) ignores every call; a HomeTrace is
// owned by one worker at a time and needs no locking.
type HomeTrace struct {
	idx   int
	label string
	tid   int
	nBins int

	// bin is the instrumentation cursor: deploy and core set it as they
	// walk bins so surface events can attribute without threading a bin
	// argument through the solver chain.
	bin int32

	// ring grows lazily up to ringCap, then wraps: a quiet home costs
	// a few small appends, never the full ring's allocation.
	ring    []Event
	ringCap int
	start   int // oldest entry when the ring has wrapped
	total   uint64

	esc      [numEscReasons]uint32
	escTotal uint32

	// Scheduling observations (never part of the deterministic
	// summary): wall offsets from the recorder epoch, in ns.
	startNS, durNS, kernelNS, stallNS int64
}

// Index returns the home's index (-1 on a nil trace).
func (h *HomeTrace) Index() int {
	if h == nil {
		return -1
	}
	return h.idx
}

// Label returns the home's RNG stream label ("" on a nil trace).
func (h *HomeTrace) Label() string {
	if h == nil {
		return ""
	}
	return h.label
}

// push appends an event, overwriting the oldest entry once the ring is
// full.
//
//powifi:noalloc
func (h *HomeTrace) push(e Event) {
	h.total++
	if len(h.ring) < h.ringCap {
		h.ring = append(h.ring, e)
		return
	}
	h.ring[h.start] = e
	h.start++
	if h.start == len(h.ring) {
		h.start = 0
	}
}

// SetBins records the home's logging-bin count (used to place ring
// events proportionally in the Chrome export).
func (h *HomeTrace) SetBins(n int) {
	if h != nil {
		h.nBins = n
	}
}

// SetBin moves the instrumentation cursor: subsequent cursor-scoped
// events (surface fallbacks) attribute to this bin.
//
//powifi:noalloc
func (h *HomeTrace) SetBin(bin int) {
	if h != nil {
		h.bin = int32(bin)
	}
}

// BinSimulated records that bin ran the packet-level event simulation,
// scheduling events kernel events, and moves the cursor to it.
//
//powifi:noalloc
func (h *HomeTrace) BinSimulated(bin int, events uint64) {
	if h == nil {
		return
	}
	h.bin = int32(bin)
	h.push(Event{Kind: EvBinSim, Bin: int32(bin), Arg: float64(events)})
}

// SurfaceExact records an exact-solver fallback at the cursor bin.
//
//powifi:noalloc
func (h *HomeTrace) SurfaceExact() {
	if h != nil {
		h.push(Event{Kind: EvSurfaceExact, Bin: h.bin})
	}
}

// SurfaceGuard records a guard-band fallback at the cursor bin.
//
//powifi:noalloc
func (h *HomeTrace) SurfaceGuard() {
	if h != nil {
		h.push(Event{Kind: EvSurfaceGuard, Bin: h.bin})
	}
}

// OccFit records the coarse tier's per-channel occupancy fit.
func (h *HomeTrace) OccFit(channel int, slope float64) {
	if h != nil {
		h.push(Event{Kind: EvOccFit, Bin: -1, Code: uint8(channel), Arg: slope})
	}
}

// HarvestFit records the coarse tier's harvest-response fit.
func (h *HomeTrace) HarvestFit(slope float64) {
	if h != nil {
		h.push(Event{Kind: EvHarvestFit, Bin: -1, Arg: slope})
	}
}

// GuardQuery records a coarse guard-band query on bin and whether the
// proxied verdict proved stable.
//
//powifi:noalloc
func (h *HomeTrace) GuardQuery(bin int, stable bool) {
	if h == nil {
		return
	}
	arg := 0.0
	if stable {
		arg = 1
	}
	h.push(Event{Kind: EvGuardQuery, Bin: int32(bin), Arg: arg})
}

// Escalate records a proxied bin escalating to the event simulation
// with its machine-readable reason.
//
//powifi:noalloc
func (h *HomeTrace) Escalate(bin int, reason EscReason) {
	if h == nil {
		return
	}
	h.esc[reason]++
	h.escTotal++
	h.push(Event{Kind: EvEscalate, Bin: int32(bin), Code: uint8(reason)})
}

// Boot records a lifecycle device entering the operating state in bin.
func (h *HomeTrace) Boot(bin int) {
	if h != nil {
		h.push(Event{Kind: EvBoot, Bin: int32(bin)})
	}
}

// Brownout records a lifecycle device dropping out of the operating
// state in bin.
func (h *HomeTrace) Brownout(bin int) {
	if h != nil {
		h.push(Event{Kind: EvBrownout, Bin: int32(bin)})
	}
}

// Fault records an armed faultinject failpoint firing at the named
// site.
func (h *HomeTrace) Fault(site string) {
	if h != nil {
		h.push(Event{Kind: EvFault, Bin: -1, Note: site})
	}
}

// Retry records the home re-attempting after a recovered panic.
func (h *HomeTrace) Retry(attempt int) {
	if h != nil {
		h.push(Event{Kind: EvRetry, Bin: -1, Arg: float64(attempt)})
	}
}

// Quarantine records the reducer quarantining the home under the skip
// policy. Called on the reducing goroutine, in home-index order.
func (h *HomeTrace) Quarantine() {
	if h != nil {
		h.push(Event{Kind: EvQuarantine, Bin: -1})
	}
}

// Kernel records the attempt's batched-kernel wall time (scheduling
// stream only).
//
//powifi:noalloc
func (h *HomeTrace) Kernel(ns int64) {
	if h != nil {
		h.kernelNS = ns
	}
}

// Stall records wall time the attempt spent stalled before the kernel
// (an injected home.slow delay; scheduling stream only).
//
//powifi:noalloc
func (h *HomeTrace) Stall(ns int64) {
	if h != nil {
		h.stallNS += ns
	}
}

// Events returns the total number of events observed (including those
// the ring dropped).
func (h *HomeTrace) Events() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Escalations returns the home's total escalated-bin count.
func (h *HomeTrace) Escalations() uint32 {
	if h == nil {
		return 0
	}
	return h.escTotal
}

// ringEvents returns the retained ring in oldest-first order.
func (h *HomeTrace) ringEvents() []EventRecord {
	if h == nil || len(h.ring) == 0 {
		return nil
	}
	out := make([]EventRecord, 0, len(h.ring))
	for i := 0; i < len(h.ring); i++ {
		out = append(out, h.ring[(h.start+i)%len(h.ring)].record())
	}
	return out
}

// Dump renders the flight recorder into its serialized payload; nil on
// a nil trace.
func (h *HomeTrace) Dump() *Dump {
	if h == nil {
		return nil
	}
	return &Dump{
		Label:   h.label,
		Events:  h.ringEvents(),
		Dropped: h.total - uint64(len(h.ring)),
	}
}

// dominantSpan names where the home's wall time went: the batched
// kernel, an injected stall, or the residual overhead (synthesis, fold,
// scheduling).
func (h *HomeTrace) dominantSpan() string {
	other := h.durNS - h.kernelNS - h.stallNS
	switch {
	case h.stallNS >= h.kernelNS && h.stallNS >= other:
		return "stall"
	case h.kernelNS >= other:
		return "bin-batch"
	default:
		return "other"
	}
}

// escalationReasons renders the per-reason totals, nil when the home
// never escalated.
func (h *HomeTrace) escalationReasons() map[string]uint64 {
	if h.escTotal == 0 {
		return nil
	}
	m := make(map[string]uint64, numEscReasons)
	for r, n := range h.esc {
		if n > 0 {
			m[EscReason(r).String()] = uint64(n)
		}
	}
	return m
}
