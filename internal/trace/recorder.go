package trace

import (
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// maxSpans caps the raw span stream so a million-home sweep cannot hold
// every home span in memory; spans beyond the cap are counted, never
// silently dropped (SchedSummary.SpansDropped).
const maxSpans = 20000

// Home-wall sketch resolution for the scheduling summary's quantiles:
// per-home wall times of realistic sweeps sit well under a minute.
const (
	wallHiMS   = 60_000
	wallMSBins = 1200
)

// Phase span names, mirroring telemetry's, plus the root run span.
const (
	SpanRun           = "run"
	SpanSurfaceWarmup = "surface_warmup"
	SpanSimulate      = "simulate"
	SpanReduce        = "reduce"
	SpanReportWrite   = "report_write"
)

// Span is one completed span in the raw scheduling-order stream. Start
// is the wall offset from the recorder epoch; TID is 0 for the run and
// phase spans and the worker's id for worker/home/bin-batch spans.
type Span struct {
	Name    string
	TID     int
	Home    int // home index, -1 for non-home spans
	StartNS int64
	DurNS   int64
	CPUS    float64 // process CPU over the span; run/phase spans only
}

// Recorder collects one run's trace: the span stream, per-worker
// handles, and the deterministic per-home aggregates committed through
// the fleet's reorder buffer. A nil *Recorder is the disabled state —
// every method (and every handle it returns) is nil-receiver safe. A
// *Recorder is safe for concurrent use by the run's workers.
type Recorder struct {
	epoch   time.Time
	ringCap int
	topK    int

	mu           sync.Mutex
	spans        []Span
	spansDropped uint64
	workers      []*Worker

	// Deterministic aggregates, written only by CommitHome on the
	// reducing goroutine (the mutex still guards them so a mid-run
	// Summary is safe).
	homes  int
	events uint64
	esc    [numEscReasons]uint64
	failed []*HomeTrace // retained: exhausted homes, commit order
	topEsc []*HomeTrace // retained: top-K by escalations, desc, idx asc

	// Scheduling aggregates.
	wall    *stats.Sketch // per-home wall, ms
	topSlow []*HomeTrace  // top-K by wall, desc
}

// NewRecorder returns an enabled recorder with the default ring and
// retention configuration.
func NewRecorder() *Recorder {
	return &Recorder{
		epoch:   time.Now(),
		ringCap: DefaultRingCap,
		topK:    DefaultTopK,
		wall:    stats.NewSketch(0, wallHiMS, wallMSBins),
	}
}

// now returns the wall offset from the recorder epoch in ns.
func (r *Recorder) now() int64 { return time.Since(r.epoch).Nanoseconds() }

// addSpan appends to the raw span stream, counting drops beyond the
// cap.
func (r *Recorder) addSpan(s Span) {
	r.mu.Lock()
	if len(r.spans) < maxSpans {
		r.spans = append(r.spans, s)
	} else {
		r.spansDropped++
	}
	r.mu.Unlock()
}

// Span starts a run-level phase span (tid 0) and returns its closer,
// recording wall and process CPU time like telemetry's Span. On a nil
// Recorder the closer is a no-op.
func (r *Recorder) Span(name string) func() {
	if r == nil {
		return func() {}
	}
	w0, c0 := r.now(), processCPUSeconds()
	return func() {
		r.addSpan(Span{
			Name:    name,
			Home:    -1,
			StartNS: w0,
			DurNS:   r.now() - w0,
			CPUS:    processCPUSeconds() - c0,
		})
	}
}

// Worker is one fleet worker's tracing handle: it stamps home spans
// with the worker's thread id and tracks the worker's active window.
// A nil *Worker ignores every call.
type Worker struct {
	rec             *Recorder
	tid             int
	firstNS, lastNS int64
	homes           int
}

// NewWorker registers a worker handle; nil on a nil Recorder.
func (r *Recorder) NewWorker() *Worker {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &Worker{rec: r, tid: len(r.workers) + 1, firstNS: -1}
	r.workers = append(r.workers, w)
	return w
}

// Enabled reports whether the handle is live (a convenience for
// callers gating clock reads).
func (w *Worker) Enabled() bool { return w != nil }

// StartHome opens a home's flight recorder and span; nil on a nil
// Worker.
func (w *Worker) StartHome(idx int, label string, attempt int) *HomeTrace {
	if w == nil {
		return nil
	}
	ht := &HomeTrace{
		idx:     idx,
		label:   label,
		tid:     w.tid,
		ringCap: w.rec.ringCap,
		startNS: w.rec.now(),
	}
	if attempt > 1 {
		ht.Retry(attempt)
	}
	return ht
}

// EndHome closes a home's span: it stamps the duration and appends the
// home span (plus stall and bin-batch child spans when present) to the
// raw stream. Safe on nil Worker or nil HomeTrace.
//
//powifi:noalloc
func (w *Worker) EndHome(ht *HomeTrace) {
	if w == nil || ht == nil {
		return
	}
	ht.durNS = w.rec.now() - ht.startNS
	if w.firstNS < 0 {
		w.firstNS = ht.startNS
	}
	w.lastNS = ht.startNS + ht.durNS
	w.homes++
	w.rec.addSpan(Span{Name: "home", TID: w.tid, Home: ht.idx, StartNS: ht.startNS, DurNS: ht.durNS})
	if ht.stallNS > 0 {
		w.rec.addSpan(Span{Name: "stall", TID: w.tid, Home: ht.idx, StartNS: ht.startNS, DurNS: ht.stallNS})
	}
	if ht.kernelNS > 0 {
		w.rec.addSpan(Span{Name: "bin-batch", TID: w.tid, Home: ht.idx,
			StartNS: ht.startNS + ht.stallNS, DurNS: ht.kernelNS})
	}
}

// CommitHome folds one home's trace into the recorder. It is called on
// the reducing goroutine in home-index order — the same commit point as
// every other per-home aggregate — so the deterministic aggregates are
// bit-for-bit identical at any worker count. failed marks a home whose
// attempts were exhausted; its ring is always retained. Safe on nil
// Recorder or nil HomeTrace.
//
//powifi:noalloc
func (r *Recorder) CommitHome(ht *HomeTrace, failed bool) {
	if r == nil || ht == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.homes++
	r.events += ht.total
	for i, n := range ht.esc {
		r.esc[i] += uint64(n)
	}
	if failed {
		r.failed = append(r.failed, ht)
	} else if ht.escTotal > 0 {
		r.topEsc = insertTop(r.topEsc, ht, r.topK, func(a, b *HomeTrace) bool {
			if a.escTotal != b.escTotal {
				return a.escTotal > b.escTotal
			}
			return a.idx < b.idx
		})
	}
	r.wall.Add(float64(ht.durNS) / 1e6)
	r.topSlow = insertTop(r.topSlow, ht, r.topK, func(a, b *HomeTrace) bool {
		if a.durNS != b.durNS {
			return a.durNS > b.durNS
		}
		return a.idx < b.idx
	})
}

// insertTop inserts ht into a bounded slice kept sorted under less,
// dropping the weakest entry past k.
func insertTop(top []*HomeTrace, ht *HomeTrace, k int, less func(a, b *HomeTrace) bool) []*HomeTrace {
	i := sort.Search(len(top), func(i int) bool { return less(ht, top[i]) })
	if i >= k {
		return top
	}
	top = append(top, nil)
	copy(top[i+1:], top[i:])
	top[i] = ht
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// Summary is the exported view of a Recorder — the Report's "trace"
// JSON section. Everything outside Sched is deterministic: committed in
// home-index order and derived only from the simulation, so it is
// bit-for-bit identical at any worker count. Sched quarantines the
// scheduling observations (raw spans, wall quantiles, slowest homes),
// which legitimately vary run to run and across parallelism.
type Summary struct {
	// HomesTraced counts committed homes; Events the flight-recorder
	// events they produced.
	HomesTraced int    `json:"homes_traced"`
	Events      uint64 `json:"events"`
	// EscalatedBins totals coarse-tier escalations;
	// EscalationReasons breaks them down by machine-readable reason
	// code (consensus-split, guard-disagree, occ-fit-unstable).
	EscalatedBins     uint64            `json:"escalated_bins,omitempty"`
	EscalationReasons map[string]uint64 `json:"escalation_reasons,omitempty"`
	// Retained lists the homes whose full flight-recorder rings were
	// kept — every failed home plus the top-K most-escalated — in
	// home-index order.
	Retained []HomeSummary `json:"retained,omitempty"`
	// Sched holds the scheduling observations; never compare it across
	// worker counts.
	Sched *SchedSummary `json:"sched,omitempty"`
}

// HomeSummary is one retained home's deterministic forensics.
type HomeSummary struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	// Retained says why the ring was kept: "failed" or "escalations".
	Retained string `json:"retained"`
	// Events counts all observed events; Ring holds the newest RingCap
	// of them oldest-first; Dropped counts the overwritten remainder.
	Events  uint64        `json:"events"`
	Ring    []EventRecord `json:"ring,omitempty"`
	Dropped uint64        `json:"dropped,omitempty"`
	// EscalationReasons is the home's own per-reason breakdown.
	EscalationReasons map[string]uint64 `json:"escalation_reasons,omitempty"`
}

// SchedSummary is the scheduling section of a trace summary.
type SchedSummary struct {
	// Spans is the raw scheduling-order span stream (capped at
	// maxSpans; SpansDropped counts the overflow).
	Spans        []SpanRecord `json:"spans,omitempty"`
	SpansDropped uint64       `json:"spans_dropped,omitempty"`
	// HomeWallMS summarizes the per-home wall-time distribution.
	HomeWallMS WallQuantiles `json:"home_wall_ms"`
	// SlowestHomes lists the top-K slowest homes with their dominant
	// span.
	SlowestHomes []SlowHomeRecord `json:"slowest_homes,omitempty"`
}

// SpanRecord is one serialized span.
type SpanRecord struct {
	Name    string  `json:"name"`
	TID     int     `json:"tid"`
	Home    int     `json:"home,omitempty"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	CPUS    float64 `json:"cpu_s,omitempty"`
}

// WallQuantiles summarizes the per-home wall distribution.
type WallQuantiles struct {
	N   uint64  `json:"n"`
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// SlowHomeRecord is one slow home in the scheduling summary.
type SlowHomeRecord struct {
	Index        int     `json:"index"`
	Label        string  `json:"label"`
	WallMS       float64 `json:"wall_ms"`
	DominantSpan string  `json:"dominant_span"`
}

// retained returns the deterministic retention set in home-index order:
// every failed home plus the top-K most-escalated survivors.
func (r *Recorder) retained() []HomeSummary {
	out := make([]HomeSummary, 0, len(r.failed)+len(r.topEsc))
	for _, ht := range r.failed {
		out = append(out, homeSummary(ht, "failed"))
	}
	for _, ht := range r.topEsc {
		out = append(out, homeSummary(ht, "escalations"))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func homeSummary(ht *HomeTrace, why string) HomeSummary {
	return HomeSummary{
		Index:             ht.idx,
		Label:             ht.label,
		Retained:          why,
		Events:            ht.total,
		Ring:              ht.ringEvents(),
		Dropped:           ht.total - uint64(len(ht.ring)),
		EscalationReasons: ht.escalationReasons(),
	}
}

// Summary renders the recorder's current state. A summary taken after
// the run completes is deterministic in everything outside Sched.
// Returns the zero Summary on a nil Recorder.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		HomesTraced: r.homes,
		Events:      r.events,
	}
	for i, n := range r.esc {
		if n == 0 {
			continue
		}
		s.EscalatedBins += n
		if s.EscalationReasons == nil {
			s.EscalationReasons = make(map[string]uint64, numEscReasons)
		}
		s.EscalationReasons[EscReason(i).String()] = n
	}
	s.Retained = r.retained()

	sched := &SchedSummary{SpansDropped: r.spansDropped}
	for _, sp := range r.spans {
		sched.Spans = append(sched.Spans, SpanRecord{
			Name:    sp.Name,
			TID:     sp.TID,
			Home:    sp.Home,
			StartUS: float64(sp.StartNS) / 1e3,
			DurUS:   float64(sp.DurNS) / 1e3,
			CPUS:    sp.CPUS,
		})
	}
	if n := r.wall.N(); n > 0 {
		sched.HomeWallMS = WallQuantiles{
			N:   n,
			P50: r.wall.Quantile(0.50),
			P99: r.wall.Quantile(0.99),
			Max: r.wall.Max(),
		}
	}
	for _, ht := range r.topSlow {
		sched.SlowestHomes = append(sched.SlowestHomes, SlowHomeRecord{
			Index:        ht.idx,
			Label:        ht.label,
			WallMS:       float64(ht.durNS) / 1e6,
			DominantSpan: ht.dominantSpan(),
		})
	}
	s.Sched = sched
	return s
}
