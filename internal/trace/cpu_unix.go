//go:build unix

package trace

import "syscall"

// processCPUSeconds returns the process's cumulative CPU time (user +
// system, all threads). Span CPU deltas therefore measure the whole
// process over the phase — the right denominator for judging how well
// a parallel phase kept the workers busy.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
