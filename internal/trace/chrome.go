package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// — the format Perfetto and about://tracing load). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the recorder's span stream as Chrome trace-event
// JSON: complete ("X") spans for run/phase/home/bin-batch/stall,
// thread-name metadata rows per worker, and instant ("i") events for
// every retained home's flight-recorder ring — each ring event placed
// inside its home's span proportionally to its bin index, plus one
// "flight_recorder" instant carrying the whole dump. Writing a nil
// Recorder emits an empty-but-valid trace.
func (r *Recorder) WriteChrome(w io.Writer) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "powifi"}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: 0, Args: map[string]any{"name": "run"}},
	}
	if r == nil {
		return writeChromeJSON(w, events)
	}

	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	workers := len(r.workers)
	dropped := r.spansDropped
	retained := r.retained()
	r.mu.Unlock()

	for tid := 1; tid <= workers; tid++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", tid)},
		})
	}

	// Home span windows by index, for placing ring-event instants.
	type window struct {
		tid     int
		startUS float64
		durUS   float64
		nBins   int
	}
	homes := make(map[int]window, len(retained))
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name, Ph: "X", PID: 1, TID: sp.TID,
			TS: float64(sp.StartNS) / 1e3, Dur: float64(sp.DurNS) / 1e3,
		}
		if sp.Home >= 0 {
			ev.Args = map[string]any{"home": sp.Home}
			if sp.Name == "home" {
				homes[sp.Home] = window{tid: sp.TID, startUS: ev.TS, durUS: ev.Dur}
			}
		}
		if sp.CPUS > 0 {
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args["cpu_s"] = sp.CPUS
		}
		events = append(events, ev)
	}
	if dropped > 0 {
		events = append(events, chromeEvent{
			Name: "spans_dropped", Ph: "i", PID: 1, TID: 0, S: "g",
			Args: map[string]any{"dropped": dropped},
		})
	}

	for _, hs := range retained {
		win, ok := homes[hs.Index]
		if !ok {
			// Span stream overflowed past this home; anchor its dump at
			// the origin so the forensics still load.
			win = window{}
		}
		nBins := 0
		for _, e := range hs.Ring {
			if e.Bin >= nBins {
				nBins = e.Bin + 1
			}
		}
		for _, e := range hs.Ring {
			ts := win.startUS
			if nBins > 0 && e.Bin >= 0 && win.durUS > 0 {
				ts += (float64(e.Bin) + 0.5) / float64(nBins) * win.durUS
			}
			args := map[string]any{"home": hs.Index, "bin": e.Bin}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			if e.Arg != 0 {
				args["arg"] = e.Arg
			}
			events = append(events, chromeEvent{
				Name: e.Kind, Ph: "i", PID: 1, TID: win.tid, TS: ts, S: "t", Args: args,
			})
		}
		events = append(events, chromeEvent{
			Name: "flight_recorder", Ph: "i", PID: 1, TID: win.tid,
			TS: win.startUS + win.durUS, S: "t",
			Args: map[string]any{
				"home":     hs.Index,
				"label":    hs.Label,
				"retained": hs.Retained,
				"events":   hs.Events,
				"dropped":  hs.Dropped,
				"ring":     hs.Ring,
			},
		})
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	return writeChromeJSON(w, events)
}

func writeChromeJSON(w io.Writer, events []chromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}
