//go:build !unix

package trace

// processCPUSeconds has no portable implementation off unix; span CPU
// fields read zero there while wall times stay accurate.
func processCPUSeconds() float64 { return 0 }
