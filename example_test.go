package powifi_test

import (
	"context"
	"fmt"
	"time"

	powifi "repro"
)

// ExampleNewScenario builds a fleet scenario with functional options
// and shows its declarative JSON form — the same document LoadScenario
// reads and the CLIs' -scenario flag runs.
func ExampleNewScenario() {
	sc, err := powifi.NewScenario(
		powifi.WithHomes(500),
		powifi.WithSeed(42),
		powifi.WithHorizon(24*time.Hour),
	)
	if err != nil {
		panic(err)
	}
	data, err := sc.MarshalJSON()
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Mode())
	fmt.Println(string(data))

	// The JSON form round-trips: LoadScenario rebuilds the scenario.
	loaded, err := powifi.LoadScenario(data)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.Mode())
	// Output:
	// fleet
	// {"schema":1,"mode":"fleet","homes":500,"seed":42,"horizon":"24h0m0s"}
	// fleet
}

// ExampleScenario_Run executes a small fleet under a context and reads
// the unified, versioned report.
func ExampleScenario_Run() {
	sc, err := powifi.NewScenario(
		powifi.WithHomes(3),
		powifi.WithSeed(9),
		powifi.WithWorkers(2), // never affects results, only wall clock
		powifi.WithHorizon(2*time.Hour),
		powifi.WithBinWidth(30*time.Minute),
		powifi.WithWindow(2*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("schema %d, mode %s\n", rep.Schema, rep.Mode)
	fmt.Printf("%d homes, %d bins logged\n", rep.Fleet.Homes, rep.Fleet.TotalBins)
	// Output:
	// schema 1, mode fleet
	// 3 homes, 12 bins logged
}

// ExampleScenario_Bins streams a single-home deployment bin by bin —
// the §6 runner as a Go iterator. Breaking out of the loop stops the
// simulation.
func ExampleScenario_Bins() {
	sc, err := powifi.NewScenario(
		powifi.WithHome(powifi.PaperHomes()[0]), // Table 1, home 1
		powifi.WithSensorDistance(10),
		powifi.WithHorizon(2*time.Hour),
		powifi.WithBinWidth(30*time.Minute),
		powifi.WithWindow(2*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	bins, responsive := 0, 0
	for s, err := range sc.Bins(context.Background()) {
		if err != nil {
			panic(err)
		}
		bins++
		if s.SensorRate > 0 {
			responsive++
		}
	}
	fmt.Printf("%d bins simulated, sensor responsive in %d\n", bins, responsive)
	// Output:
	// 4 bins simulated, sensor responsive in 4
}
