package powifi_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/lifecycle"
)

// lifecycleAllocBudgetPerBin is the acceptance ceiling for steady-state
// heap allocations per lifecycle-mode bin: twice the sampler's 10
// allocs/bin budget, covering the packet sample plus the archetype
// chain's per-bin operating-point evaluation.
const lifecycleAllocBudgetPerBin = 20.0

// lifecycleBenchConfig is the shared lifecycle benchmark workload: the
// standard 16-home fleet with a mixed device population spanning every
// archetype.
func lifecycleBenchConfig(workers int) fleet.Config {
	cfg := fleetBenchConfig(workers, false)
	cfg.Population = fleet.DefaultPopulation()
	var m lifecycle.Mix
	m[lifecycle.TempSensor] = 0.3
	m[lifecycle.RechargingTemp] = 0.15
	m[lifecycle.Camera] = 0.2
	m[lifecycle.Jawbone] = 0.15
	m[lifecycle.LiIon] = 0.1
	m[lifecycle.NiMH] = 0.1
	cfg.Population.Devices = m
	return cfg
}

// lifecycleBinsPerHome returns the per-home bin count of the benchmark
// workload, derived from the same snapping the runner uses.
func lifecycleBinsPerHome(cfg fleet.Config) int {
	return int(cfg.Hours * float64(3600) / cfg.BinWidth.Seconds())
}

// BenchmarkLifecycleFleet runs the mixed-device fleet at several worker
// counts, reporting ns/home and allocs/home. Comparing against
// BenchmarkFleet quantifies what the stateful lifecycle engine adds on
// top of the classic aggregates-only run.
func BenchmarkLifecycleFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs() // with ns/home: divide allocs/op by the 16 homes for allocs/home
			runFleetBench(b, lifecycleBenchConfig(workers))
		})
	}
}

// TestLifecycleFleetAllocBudget pins the tentpole's allocation
// acceptance bound without needing the bench environment: a
// steady-state mixed-device fleet home stays within twice the
// sampler's per-bin allocation budget (per-run setup — result and
// partial sketches — amortizes over the homes and is covered by the
// budget's slack).
func TestLifecycleFleetAllocBudget(t *testing.T) {
	cfg := lifecycleBenchConfig(1)
	if _, err := fleet.Run(context.Background(), cfg); err != nil { // warm pools and surfaces
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := fleet.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	})
	perHome := allocs / float64(cfg.Homes)
	budget := lifecycleAllocBudgetPerBin * float64(lifecycleBinsPerHome(cfg))
	if perHome > budget {
		t.Errorf("lifecycle fleet allocs/home = %.1f exceeds the %.0f budget (2x sampler budget x %d bins)",
			perHome, budget, lifecycleBinsPerHome(cfg))
	}
	t.Logf("lifecycle fleet allocs/home = %.1f (budget %.0f)", perHome, budget)
}

// TestEmitLifecycleBenchJSON emits BENCH_lifecycle.json when
// POWIFI_BENCH_JSON is set (the CI bench-smoke job sets it): the mixed
// lifecycle fleet's ns/home and allocs/home next to the classic
// fleet's, and the allocation budget the acceptance criteria bound.
func TestEmitLifecycleBenchJSON(t *testing.T) {
	if os.Getenv("POWIFI_BENCH_JSON") == "" {
		t.Skip("set POWIFI_BENCH_JSON=1 to emit BENCH_lifecycle.json")
	}

	cfg := lifecycleBenchConfig(1)
	bins := lifecycleBinsPerHome(cfg)
	lr := testing.Benchmark(func(b *testing.B) { runFleetBench(b, cfg) })
	lifeNsPerHome := float64(lr.NsPerOp()) / float64(cfg.Homes)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := fleet.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	})
	allocsPerHome := allocs / float64(cfg.Homes)
	allocsPerBin := allocsPerHome / float64(bins)

	classic := fleetBenchConfig(1, false)
	cr := testing.Benchmark(func(b *testing.B) { runFleetBench(b, classic) })
	classicNsPerHome := float64(cr.NsPerOp()) / float64(classic.Homes)

	rep := struct {
		GOOS              string  `json:"goos"`
		GOARCH            string  `json:"goarch"`
		GOMAXPROCS        int     `json:"gomaxprocs"`
		NsPerHome         float64 `json:"lifecycle_ns_per_home"`
		ClassicNsPerHome  float64 `json:"classic_ns_per_home"`
		OverheadFraction  float64 `json:"lifecycle_overhead_fraction"`
		AllocsPerHome     float64 `json:"lifecycle_allocs_per_home"`
		AllocsPerBin      float64 `json:"lifecycle_allocs_per_bin"`
		AllocBudgetPerBin float64 `json:"alloc_budget_per_bin"`
		Devices           string  `json:"devices"`
		BenchConfig       string  `json:"bench_config"`
	}{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0),
		NsPerHome: lifeNsPerHome, ClassicNsPerHome: classicNsPerHome,
		OverheadFraction: lifeNsPerHome/classicNsPerHome - 1,
		AllocsPerHome:    allocsPerHome, AllocsPerBin: allocsPerBin,
		AllocBudgetPerBin: lifecycleAllocBudgetPerBin,
		Devices:           cfg.Population.Devices.String(),
		BenchConfig:       fmt.Sprintf("%d homes x %d bins, window %v", cfg.Homes, bins, cfg.Window),
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_lifecycle.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_lifecycle.json: %.0f ns/home lifecycle vs %.0f classic (%.1f%% overhead), %.2f allocs/bin",
		lifeNsPerHome, classicNsPerHome, 100*rep.OverheadFraction, allocsPerBin)

	if allocsPerBin > lifecycleAllocBudgetPerBin {
		t.Errorf("lifecycle allocs/bin %.2f exceeds the %.0f budget", allocsPerBin, lifecycleAllocBudgetPerBin)
	}
}
