package powifi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/lifecycle"
	"repro/internal/phy"
	"repro/internal/surface"
	powifitrace "repro/internal/trace"
)

// Run modes a Scenario resolves to. The mode is never set directly:
// it is derived from which options the scenario carries (WithExperiment
// selects ModeExperiment, WithHome selects ModeHome, everything else is
// a fleet run) and echoed in Report.Mode and the scenario JSON.
const (
	ModeFleet      = "fleet"
	ModeHome       = "home"
	ModeExperiment = "experiment"
)

// Scenario is the composable description of one simulation run — the
// SDK's single entry point for single-home deployments (§6), fleet-
// scale populations, device-lifecycle studies, and the paper's table/
// figure experiments. Build one with NewScenario and functional
// options, or load a declarative JSON form with LoadScenario; execute
// it with Run, or stream results with Bins (single-home) and Homes
// (fleet). A Scenario is immutable after NewScenario and safe for
// concurrent use by multiple goroutines (each Run builds its own
// simulation state), with two caveats: the WithProgress callback, if
// any, must itself be safe for the concurrency the caller creates, and
// experiment scenarios with WithExact toggle the process-wide
// operating-point surface for the duration of their Run — they
// serialize among themselves, but a concurrent non-exact run in the
// same process would take the exact solver path during that window
// (identical boot decisions, results within the surface's certified ε,
// just slower).
type Scenario struct {
	set        optSet
	homes      int
	seed       uint64
	workers    int
	horizon    time.Duration
	binWidth   time.Duration
	window     time.Duration
	exact      bool
	coarse     bool
	population FleetPopulation
	devices    DeviceMix
	home       HomeConfig
	sensorFt   float64
	experiment string
	full       bool
	progress   func(done, total int)
	telemetry  *Telemetry
	metricsTo  io.Writer
	trace      *Trace
	traceTo    io.Writer
	checkpoint string
	policy     FailurePolicy
	deadline   time.Duration
	maxFailed  int
	faults     string
}

// optSet tracks which options a scenario carries, so zero values the
// caller explicitly asked for (seed 0, exact false) are distinguished
// from defaults, and so the JSON form round-trips exactly.
type optSet uint32

const (
	optHomes optSet = 1 << iota
	optSeed
	optWorkers
	optHorizon
	optBinWidth
	optWindow
	optExact
	optCoarse
	optPopulation
	optDevices
	optHome
	optSensor
	optExperiment
	optFull
	optProgress
	optTelemetry
	optMetricsSink
	optCheckpoint
	optPolicy
	optDeadline
	optMaxFailed
	optFaults
	optTrace
	optTraceOut
)

// Option configures a Scenario under construction.
type Option func(*Scenario) error

// NewScenario builds an immutable scenario from the given options,
// validating that they describe exactly one run mode. Numeric
// validation (home counts, durations, population bounds) happens at
// Run, where it is shared with the underlying engines.
func NewScenario(opts ...Option) (*Scenario, error) {
	s := &Scenario{}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("powifi: nil Option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// With derives a new scenario from s with additional options applied —
// the escape hatch for attaching execution state (WithProgress,
// WithTelemetry, WithMetricsSink, WithCheckpoint) to a scenario loaded from its JSON
// form, which deliberately cannot carry it. The receiver is never
// modified; the derived scenario is re-validated as a whole.
func (s *Scenario) With(opts ...Option) (*Scenario, error) {
	clone := *s
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("powifi: nil Option")
		}
		if err := opt(&clone); err != nil {
			return nil, err
		}
	}
	if err := clone.validate(); err != nil {
		return nil, err
	}
	return &clone, nil
}

// WithHomes sets the number of synthesized households of a fleet run
// (default 1000).
func WithHomes(n int) Option {
	return func(s *Scenario) error { s.homes, s.set = n, s.set|optHomes; return nil }
}

// WithSeed sets the seed all randomness derives from. Fleet runs
// default to seed 1; single-home runs default to the configured home's
// own Seed field.
func WithSeed(seed uint64) Option {
	return func(s *Scenario) error { s.seed, s.set = seed, s.set|optSeed; return nil }
}

// WithWorkers sets the fleet's simulation parallelism (0, the default,
// means GOMAXPROCS). Worker count never affects results, only
// wall-clock time: fleet output is bit-for-bit identical at any value.
func WithWorkers(n int) Option {
	return func(s *Scenario) error { s.workers, s.set = n, s.set|optWorkers; return nil }
}

// WithHorizon sets the simulated deployment duration (default 24 h).
// It is snapped down to a whole number of logging bins.
func WithHorizon(d time.Duration) Option {
	return func(s *Scenario) error { s.horizon, s.set = d, s.set|optHorizon; return nil }
}

// WithBinWidth sets the occupancy logging resolution (default 1 h for
// fleet runs, 60 s for single-home runs, matching the paper).
func WithBinWidth(d time.Duration) Option {
	return func(s *Scenario) error { s.binWidth, s.set = d, s.set|optBinWidth; return nil }
}

// WithWindow sets the packet-level sample window simulated per logging
// bin (default 10 ms for fleet runs, 1 s for single-home runs).
func WithWindow(d time.Duration) Option {
	return func(s *Scenario) error { s.window, s.set = d, s.set|optWindow; return nil }
}

// WithExact bypasses the error-bounded operating-point surface and
// solves every rectifier operating point directly (slower; for
// validating the surface's ε guarantee).
func WithExact(exact bool) Option {
	return func(s *Scenario) error { s.exact, s.set = exact, s.set|optExact; return nil }
}

// WithCoarse selects the fleet's error-bounded coarse sampling tier:
// only anchor bins run the packet-level event simulation, the bins
// between are proxied from each home's exact offered-load plan, and
// any bin whose boot/silence decision is not provably stable escalates
// back to the event simulation. Boot/silence decisions stay
// bit-identical to the default exact tier; aggregate magnitudes carry
// the tier's certified ε (documented on the engine's CoarseOptions).
// Fleet-only, and incompatible with WithDevices: the lifecycle ledger
// integrates per-bin magnitudes over time, which would compound the
// proxy ε outside its certified bound.
func WithCoarse(coarse bool) Option {
	return func(s *Scenario) error { s.coarse, s.set = coarse, s.set|optCoarse; return nil }
}

// WithPopulation sets the household distributions a fleet's homes are
// drawn from (default DefaultFleetPopulation).
func WithPopulation(p FleetPopulation) Option {
	return func(s *Scenario) error { s.population, s.set = p, s.set|optPopulation; return nil }
}

// WithDevices enables the stateful device-lifecycle engine. In a fleet
// scenario the mix's shares are the population weights each home's
// archetype is drawn from; in a single-home scenario every archetype
// with a positive share contributes one device to the household and
// the shares' magnitudes are ignored. Overrides the Devices field of a
// WithPopulation population.
func WithDevices(m DeviceMix) Option {
	return func(s *Scenario) error {
		if err := m.Validate(); err != nil {
			return err
		}
		if !m.Enabled() {
			return errors.New("powifi: WithDevices requires at least one positive share")
		}
		s.devices, s.set = m, s.set|optDevices
		return nil
	}
}

// WithHome selects single-home mode: the §6 deployment runner over one
// household. Combine with WithSensorDistance, WithHorizon, WithBinWidth,
// WithWindow, WithDevices and WithExact; fleet options (WithHomes,
// WithPopulation, WithWorkers) conflict with it.
func WithHome(h HomeConfig) Option {
	return func(s *Scenario) error { s.home, s.set = h, s.set|optHome; return nil }
}

// WithSensorDistance places the single-home run's battery-free sensor
// (default 10 ft, the paper's placement). Requires WithHome; a fleet's
// placements come from its population distribution instead.
func WithSensorDistance(ft float64) Option {
	return func(s *Scenario) error {
		if ft <= 0 {
			return fmt.Errorf("powifi: sensor distance %v ft, need > 0", ft)
		}
		s.sensorFt, s.set = ft, s.set|optSensor
		return nil
	}
}

// WithExperiment selects experiment mode: regenerate one of the
// paper's tables or figures (see Experiments for the ids). Only
// WithFull and WithExact compose with it.
func WithExperiment(id string) Option {
	return func(s *Scenario) error {
		if id == "" {
			return errors.New("powifi: empty experiment id")
		}
		s.experiment, s.set = id, s.set|optExperiment
		return nil
	}
}

// WithFull switches an experiment scenario from the quick reduced
// configuration (the default) to the paper-scale one.
func WithFull(full bool) Option {
	return func(s *Scenario) error { s.full, s.set = full, s.set|optFull; return nil }
}

// WithProgress registers a callback invoked once per completed unit of
// work — homes for fleet runs, logging bins for single-home runs —
// with the number done so far and the total. Fleet progress arrives in
// home-index order at any worker count, always from the goroutine that
// called Run (or is consuming Homes). Progress is execution state, not
// configuration: it is excluded from the scenario's JSON form.
func WithProgress(fn func(done, total int)) Option {
	return func(s *Scenario) error {
		if fn == nil {
			return errors.New("powifi: nil progress callback")
		}
		s.progress, s.set = fn, s.set|optProgress
		return nil
	}
}

// WithCheckpoint makes a fleet run resumable: the run periodically
// writes its committed home prefix to path (atomically — a crash mid-
// write leaves the previous checkpoint intact), writes it once more on
// cancellation, and removes the file on successful completion. A
// subsequent Run with the same scenario and path resumes from the
// prefix and produces output bit-identical to an uninterrupted run, at
// any WithWorkers value. The file refuses to resume under a different
// configuration, and checkpointing is incompatible with WithDevices
// (the lifecycle ledgers live outside the committed prefix). Like
// WithProgress, a checkpoint path is execution state, not
// configuration: it is excluded from the scenario's JSON form.
func WithCheckpoint(path string) Option {
	return func(s *Scenario) error {
		if path == "" {
			return errors.New("powifi: empty checkpoint path")
		}
		s.checkpoint, s.set = path, s.set|optCheckpoint
		return nil
	}
}

// WithFailurePolicy decides what a per-home worker failure (a panic
// inside the simulation of one home) does to a fleet run. The default
// zero policy fails fast: the run aborts with a structured *HomeError
// naming the home. Retry re-runs the failed home up to n more times on
// a fresh sampler; Skip quarantines homes that exhaust their retries
// into the report's Errors section and keeps going. Failure handling
// is workers-invariant: the same homes fail, retry and quarantine — in
// home-index order — at any WithWorkers value. Incompatible with
// WithDevices (lifecycle ledgers accumulate outside the committed home
// prefix).
func WithFailurePolicy(p FailurePolicy) Option {
	return func(s *Scenario) error {
		if p.Retry < 0 {
			return fmt.Errorf("powifi: FailurePolicy.Retry = %d, need >= 0", p.Retry)
		}
		s.policy, s.set = p, s.set|optPolicy
		return nil
	}
}

// WithDeadline bounds a fleet run's wall-clock time. When it expires
// the run stops gracefully: the committed home prefix is reduced, a
// final checkpoint is written (under WithCheckpoint), and Run returns
// a Report whose fleet summary is marked Partial with reason
// "deadline" — not an error. Cancelling the context remains an error;
// only the deadline degrades gracefully. Incompatible with
// WithDevices.
func WithDeadline(d time.Duration) Option {
	return func(s *Scenario) error {
		if d <= 0 {
			return fmt.Errorf("powifi: deadline %v, need > 0", d)
		}
		s.deadline, s.set = d, s.set|optDeadline
		return nil
	}
}

// WithMaxFailedHomes caps the number of quarantined homes a Skip
// policy tolerates. Exceeding the cap ends the run with a partial
// fleet summary (reason "failure_budget") covering the committed
// prefix. Requires a WithFailurePolicy with Skip set.
func WithMaxFailedHomes(n int) Option {
	return func(s *Scenario) error {
		if n <= 0 {
			return fmt.Errorf("powifi: MaxFailedHomes = %d, need > 0", n)
		}
		s.maxFailed, s.set = n, s.set|optMaxFailed
		return nil
	}
}

// WithFaults arms deterministic fault injection for a fleet run —
// the chaos-certification hook behind the CLI's hidden -faults flag.
// The spec grammar is internal/faultinject's Parse form
// ("site@key[,times=N][,delay=D]" joined by ";"); faults derive from
// the run seed, so an armed run is as reproducible as a clean one.
// Execution state: excluded from the scenario's JSON form.
func WithFaults(spec string) Option {
	return func(s *Scenario) error {
		if spec == "" {
			return errors.New("powifi: empty fault spec")
		}
		if _, err := faultinject.Parse(0, spec); err != nil {
			return fmt.Errorf("powifi: %v", err)
		}
		s.faults, s.set = spec, s.set|optFaults
		return nil
	}
}

// validate checks that the applied options describe exactly one mode.
func (s *Scenario) validate() error {
	switch {
	case s.set&optExperiment != 0:
		if bad := s.set &^ (optExperiment | optFull | optExact); bad != 0 {
			return fmt.Errorf("powifi: experiment scenario %q accepts only WithFull and WithExact", s.experiment)
		}
	case s.set&optHome != 0:
		if bad := s.set & (optHomes | optPopulation | optWorkers); bad != 0 {
			return errors.New("powifi: WithHome (single-home mode) conflicts with WithHomes/WithPopulation/WithWorkers")
		}
		if s.set&optFull != 0 {
			return errors.New("powifi: WithFull applies only to experiment scenarios")
		}
		if s.set&(optTelemetry|optMetricsSink) != 0 {
			return errors.New("powifi: WithTelemetry/WithMetricsSink apply only to fleet scenarios")
		}
		if s.set&(optTrace|optTraceOut) != 0 {
			return errors.New("powifi: WithTrace/WithTraceOutput apply only to fleet scenarios")
		}
		if s.set&optCoarse != 0 {
			return errors.New("powifi: WithCoarse applies only to fleet scenarios (the coarse tier proxies across a population's bins)")
		}
		if s.set&optCheckpoint != 0 {
			return errors.New("powifi: WithCheckpoint applies only to fleet scenarios (single homes simulate in well under a second)")
		}
		if s.set&(optPolicy|optDeadline|optMaxFailed|optFaults) != 0 {
			return errors.New("powifi: WithFailurePolicy/WithDeadline/WithMaxFailedHomes/WithFaults apply only to fleet scenarios")
		}
	default:
		if s.set&optSensor != 0 {
			return errors.New("powifi: WithSensorDistance requires WithHome; fleet placements come from the population")
		}
		if s.set&optFull != 0 {
			return errors.New("powifi: WithFull applies only to experiment scenarios")
		}
	}
	return nil
}

// Mode returns the run mode the scenario resolves to: ModeFleet,
// ModeHome or ModeExperiment.
func (s *Scenario) Mode() string {
	switch {
	case s.set&optExperiment != 0:
		return ModeExperiment
	case s.set&optHome != 0:
		return ModeHome
	default:
		return ModeFleet
	}
}

// Run executes the scenario to completion and reduces it into the
// unified Report. Cancelling ctx stops fleet and single-home
// simulations promptly — workers check their context once per logging
// bin, drain and exit cleanly — and Run returns ctx.Err() with a nil
// Report; partial results are discarded, never silently truncated.
// Experiment runners predate the context plumbing and check
// cancellation only between runs, so an in-flight experiment completes
// before the cancellation is honored.
func (s *Scenario) Run(ctx context.Context) (*Report, error) {
	switch s.Mode() {
	case ModeExperiment:
		return s.runExperiment(ctx)
	case ModeHome:
		return s.runHome(ctx)
	default:
		return s.runFleet(ctx)
	}
}

// fleetConfig assembles the underlying fleet configuration, leaving
// unset options to the engine's defaults.
func (s *Scenario) fleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	if s.set&optHomes != 0 {
		cfg.Homes = s.homes
	}
	if s.set&optSeed != 0 {
		cfg.Seed = s.seed
	}
	if s.set&optWorkers != 0 {
		cfg.Workers = s.workers
	}
	if s.set&optHorizon != 0 {
		cfg.Hours = s.horizon.Hours()
	}
	if s.set&optBinWidth != 0 {
		cfg.BinWidth = s.binWidth
	}
	if s.set&optWindow != 0 {
		cfg.Window = s.window
	}
	if s.set&optPopulation != 0 {
		cfg.Population = s.population
	}
	if s.set&optDevices != 0 {
		cfg.Population.Devices = s.devices
	}
	cfg.Exact = s.exact
	cfg.Coarse = s.coarse
	if s.set&optPolicy != 0 {
		cfg.Policy = s.policy
	}
	if s.set&optDeadline != 0 {
		cfg.Deadline = s.deadline
	}
	if s.set&optMaxFailed != 0 {
		cfg.MaxFailedHomes = s.maxFailed
	}
	return cfg
}

// fleetFaults arms the WithFaults spec against the run's resolved seed
// (nil when the option is absent). The spec was validated at option
// time; re-parsing with the real seed cannot fail.
func (s *Scenario) fleetFaults(cfg fleet.Config) *faultinject.Set {
	if s.set&optFaults == 0 {
		return nil
	}
	fi, err := faultinject.Parse(cfg.Seed, s.faults)
	if err != nil {
		panic("powifi: validated fault spec failed to re-parse: " + err.Error())
	}
	return fi
}

// fleetCheckpoint translates the WithCheckpoint path into the engine's
// checkpoint descriptor (nil when the option is absent).
func (s *Scenario) fleetCheckpoint() *fleet.Checkpoint {
	if s.set&optCheckpoint == 0 {
		return nil
	}
	return &fleet.Checkpoint{Path: s.checkpoint}
}

func (s *Scenario) runFleet(ctx context.Context) (*Report, error) {
	t := s.telemetry
	if t == nil && s.set&optMetricsSink != 0 {
		// A sink without an explicit collector still needs one to write.
		t = NewTelemetry()
	}
	rec := s.trace
	if rec == nil && s.set&optTraceOut != 0 {
		// An output without an explicit recorder still needs one to write.
		rec = NewTrace()
	}
	cfg := s.fleetConfig()
	endRun := rec.Span(powifitrace.SpanRun)
	res, err := fleet.RunWith(ctx, cfg, fleet.Hooks{
		Progress:   s.progress,
		Telemetry:  t,
		Trace:      rec,
		Checkpoint: s.fleetCheckpoint(),
		Faults:     s.fleetFaults(cfg),
	})
	endRun()
	if err != nil {
		return nil, err
	}
	sum := res.Summarize()
	rep := newReport(ModeFleet, &Report{Fleet: &sum})
	if t != nil {
		snap := t.Snapshot()
		rep.Telemetry = &snap
		if s.metricsTo != nil {
			if err := t.WritePrometheus(s.metricsTo); err != nil {
				return nil, fmt.Errorf("powifi: writing metrics sink: %w", err)
			}
		}
	}
	if rec != nil {
		tsum := rec.Summary()
		rep.Trace = &tsum
		if s.traceTo != nil {
			if err := rec.WriteChrome(s.traceTo); err != nil {
				return nil, fmt.Errorf("powifi: writing trace output: %w", err)
			}
		}
	}
	return rep, nil
}

// homeRun assembles the single-home configuration and options, leaving
// unset fields to the deployment runner's defaults (24 h, 60 s bins,
// 1 s windows, 10 ft).
func (s *Scenario) homeRun() (HomeConfig, deploy.Options) {
	home := s.home
	if s.set&optSeed != 0 {
		home.Seed = s.seed
	}
	opts := deploy.Options{Exact: s.exact}
	if s.set&optHorizon != 0 {
		opts.Hours = s.horizon.Hours()
	}
	if s.set&optBinWidth != 0 {
		opts.BinWidth = s.binWidth
	}
	if s.set&optWindow != 0 {
		opts.Window = s.window
	}
	if s.set&optSensor != 0 {
		opts.SensorDistanceFt = s.sensorFt
	}
	return home, opts
}

// homeDevices builds the household's lifecycle devices: one per
// archetype with a positive share, in canonical order.
func (s *Scenario) homeDevices() lifecycle.Group {
	if s.set&optDevices == 0 {
		return nil
	}
	var g lifecycle.Group
	for _, k := range lifecycle.Kinds() {
		if s.devices[k] > 0 {
			d := lifecycle.NewDevice(k, lifecycle.Policy{})
			d.Exact = s.exact
			g = append(g, d)
		}
	}
	return g
}

func (s *Scenario) runHome(ctx context.Context) (*Report, error) {
	home, opts := s.homeRun()
	// ropts is a resolved view for validation and the report echo; the
	// unresolved opts go to StreamBins, which normalizes exactly once
	// (the deploy invariant).
	ropts := opts.Resolved()
	nBins := ropts.NumBins()
	if nBins < 1 {
		return nil, fmt.Errorf("powifi: horizon %.3gh is shorter than one %v bin", ropts.Hours, ropts.BinWidth)
	}
	devs := s.homeDevices()
	if devs != nil {
		devs.Begin(ropts.SensorDistanceFt, ropts.BinWidth)
	}

	hr := &HomeReport{
		Home:                home,
		SensorFt:            ropts.SensorDistanceFt,
		Hours:               float64(nBins) * ropts.BinWidth.Hours(),
		BinWidthS:           ropts.BinWidth.Seconds(),
		WindowS:             ropts.Window.Seconds(),
		Exact:               ropts.Exact,
		ChannelOccupancyPct: make(map[string]float64, 3),
	}
	var (
		sumCum, sumHarvest, sumRate float64
		sumCh                       [3]float64
		cancelled                   bool
	)
	deploy.NewSampler().StreamBins(home, opts, func(b deploy.BinSample) bool {
		if ctx.Err() != nil {
			cancelled = true
			return false
		}
		hr.Bins++
		sumCum += b.CumulativePct
		for i := range sumCh {
			sumCh[i] += b.Occupancy[i] * 100
		}
		// The silent-bin clamp convention is shared with the fleet
		// aggregates through BankedHarvestUW.
		sumHarvest += b.BankedHarvestUW()
		sumRate += b.SensorRate
		if b.SensorRate <= 0 {
			hr.SilentBins++
		}
		if devs != nil {
			devs.VisitBin(b)
		}
		if s.progress != nil {
			s.progress(hr.Bins, nBins)
		}
		return true
	})
	if cancelled {
		return nil, ctx.Err()
	}
	if n := float64(hr.Bins); n > 0 {
		hr.MeanCumulativePct = sumCum / n
		hr.MeanHarvestUW = sumHarvest / n
		hr.MeanUpdateRateHz = sumRate / n
		for i, ch := range phy.PoWiFiChannels {
			hr.ChannelOccupancyPct[ch.String()] = sumCh[i] / n
		}
	}
	for _, d := range devs {
		hr.Devices = append(hr.Devices, d.Section())
	}
	return newReport(ModeHome, &Report{Home: hr}), nil
}

// exactExperimentMu serializes experiment runs that bypass the
// operating-point surface: the bypass is a process-wide switch (the
// experiment runners predate per-run Exact plumbing), so concurrent
// save/disable/restore sequences would corrupt each other and could
// leave the surface disabled for the whole process.
var exactExperimentMu sync.Mutex

func (s *Scenario) runExperiment(ctx context.Context) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.exact {
		// The experiment runners consult the process-wide surface
		// switch; serialize exact runs and restore whatever happens.
		// Concurrent non-exact runs during this window would also see
		// the surface off — see the Scenario doc's concurrency caveat.
		exactExperimentMu.Lock()
		defer exactExperimentMu.Unlock()
		prev := surface.Enabled()
		surface.SetEnabled(false)
		defer surface.SetEnabled(prev)
	}
	var buf bytes.Buffer
	if !experiments.Run(s.experiment, &buf, !s.full) {
		return nil, fmt.Errorf("powifi: unknown experiment %q", s.experiment)
	}
	return newReport(ModeExperiment, &Report{Experiment: &ExperimentReport{
		ID:     s.experiment,
		Full:   s.full,
		Output: buf.String(),
	}}), nil
}

// Bins streams a single-home scenario's logging bins in order — the
// iterator form of Run for consumers that want the per-bin trace
// instead of the reduced report. Breaking out of the loop stops the
// simulation mid-home; the WithProgress callback, if any, fires per
// bin exactly as under Run. On cancellation the iterator yields
// ctx.Err() once (with a zero BinSample) and stops. Calling Bins on a
// fleet or experiment scenario — or with a horizon Run would reject —
// yields a single error.
func (s *Scenario) Bins(ctx context.Context) iter.Seq2[BinSample, error] {
	return func(yield func(BinSample, error) bool) {
		if s.Mode() != ModeHome {
			yield(BinSample{}, fmt.Errorf("powifi: Bins requires a single-home scenario (mode %q; use WithHome)", s.Mode()))
			return
		}
		home, opts := s.homeRun()
		ropts := opts.Resolved()
		nBins := ropts.NumBins()
		if nBins < 1 {
			// Same misconfiguration Run rejects: a silent empty stream
			// would read as "no data" rather than "bad horizon".
			yield(BinSample{}, fmt.Errorf("powifi: horizon %.3gh is shorter than one %v bin", ropts.Hours, ropts.BinWidth))
			return
		}
		done := 0
		deploy.NewSampler().StreamBins(home, opts, func(b deploy.BinSample) bool {
			if err := ctx.Err(); err != nil {
				yield(BinSample{}, err)
				return false
			}
			if !yield(b, nil) {
				return false
			}
			done++
			if s.progress != nil {
				s.progress(done, nBins)
			}
			return true
		})
	}
}

// Homes streams a fleet scenario's per-home records in home-index
// order — identical records in identical order at any WithWorkers
// value. Breaking out of the loop stops the run: workers drain and
// exit cleanly, and nothing further is simulated. On cancellation the
// iterator yields ctx.Err() once (with a zero HomeRecord) and stops.
// Calling Homes on a single-home or experiment scenario yields a
// single error.
func (s *Scenario) Homes(ctx context.Context) iter.Seq2[HomeRecord, error] {
	return func(yield func(HomeRecord, error) bool) {
		if s.Mode() != ModeFleet {
			yield(HomeRecord{}, fmt.Errorf("powifi: Homes requires a fleet scenario (mode %q)", s.Mode()))
			return
		}
		stopped := false
		cfg := s.fleetConfig()
		_, err := fleet.RunWith(ctx, cfg, fleet.Hooks{
			Progress:   s.progress,
			Checkpoint: s.fleetCheckpoint(),
			Faults:     s.fleetFaults(cfg),
			Home: func(r fleet.HomeRecord) bool {
				if !yield(r, nil) {
					stopped = true
					return false
				}
				return true
			},
		})
		if err != nil && !stopped && !errors.Is(err, fleet.ErrStopped) {
			yield(HomeRecord{}, err)
		}
	}
}
