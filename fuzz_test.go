package powifi

import (
	"encoding/json"
	"testing"
)

// FuzzLoadScenario holds the scenario loader to its contract: arbitrary
// bytes must never panic (malformed input is an error), and any
// scenario it accepts must round-trip — marshal back to JSON that loads
// to the same scenario.
func FuzzLoadScenario(f *testing.F) {
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte(`{"schema":1,"homes":100,"seed":42,"bin":"1h","horizon":"24h","exact":true}`))
	f.Add([]byte(`{"schema":1,"mode":"fleet","homes":8,"workers":2,"window":"2ms","failure_policy":{"mode":"skip"}}`))
	f.Add([]byte(`{"schema":1,"experiment":"occupancy","full":true}`))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`{"schema":1,"bogus":true}`))
	f.Add([]byte(`{"schema":1,"bin":"not-a-duration"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadScenario(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error %v but non-nil scenario", err)
			}
			return
		}
		if s == nil {
			t.Fatal("nil error and nil scenario")
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		again, err := LoadScenario(out)
		if err != nil {
			t.Fatalf("marshaled form %s does not reload: %v", out, err)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("reloaded scenario does not marshal: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round-trip drift:\n first %s\nsecond %s", out, out2)
		}
	})
}
