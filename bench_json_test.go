package powifi_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
)

// TestEmitFleetBenchJSON seeds the repo's performance trajectory: when
// POWIFI_BENCH_JSON is set (the CI bench-smoke job sets it), it runs the
// fleet sweep and the Evaluate exact/surface pair under testing.Benchmark
// and writes BENCH_fleet.json. Each record carries a `line` field in the
// standard Go benchmark text format, so
//
//	jq -r '.benchmarks[].line' BENCH_fleet.json | benchstat /dev/stdin
//
// feeds benchstat directly, while the parsed fields (ns_per_op, ns_per_home,
// surface_speedup) serve dashboards without a parser.
func TestEmitFleetBenchJSON(t *testing.T) {
	if os.Getenv("POWIFI_BENCH_JSON") == "" {
		t.Skip("set POWIFI_BENCH_JSON=1 to emit BENCH_fleet.json")
	}

	type record struct {
		Name        string  `json:"name"`
		Iters       int     `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		NsPerHome   float64 `json:"ns_per_home,omitempty"`
		HomesPerSec float64 `json:"homes_per_sec,omitempty"`
		Line        string  `json:"line"`
	}
	type report struct {
		GOOS           string   `json:"goos"`
		GOARCH         string   `json:"goarch"`
		GOMAXPROCS     int      `json:"gomaxprocs"`
		SurfaceSpeedup float64  `json:"surface_speedup_per_home"`
		SweepExactHPS  float64  `json:"sweep_exact_homes_per_sec"`
		SweepCoarseHPS float64  `json:"sweep_coarse_homes_per_sec"`
		CoarseSpeedup  float64  `json:"coarse_speedup_per_home"`
		Benchmarks     []record `json:"benchmarks"`
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	add := func(name string, homes int, bench func(*testing.B)) record {
		res := testing.Benchmark(bench)
		r := record{
			Name:    name,
			Iters:   res.N,
			NsPerOp: float64(res.NsPerOp()),
			Line:    fmt.Sprintf("Benchmark%s-%d %d %d ns/op", name, runtime.GOMAXPROCS(0), res.N, res.NsPerOp()),
		}
		if homes > 0 {
			r.NsPerHome = r.NsPerOp / float64(homes)
			r.HomesPerSec = 1e9 / r.NsPerHome
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		return r
	}

	// Warm the shared operating-point surface outside every timer.
	core.NewBatteryFreeTempSensor().Evaluate(core.PoWiFiLink(10, 1.2))

	add("EvaluateExact", 0, BenchmarkEvaluateExact)
	add("EvaluateSurface", 0, BenchmarkEvaluateSurface)
	var surfNs, exactNs float64
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := fleetBenchConfig(workers, false)
		r := add(fmt.Sprintf("Fleet/workers=%d", workers), cfg.Homes, func(b *testing.B) {
			runFleetBench(b, cfg)
		})
		if workers == 1 {
			surfNs = r.NsPerHome
		}
	}
	{
		cfg := fleetBenchConfig(1, true)
		r := add("FleetExact/workers=1", cfg.Homes, func(b *testing.B) {
			runFleetBench(b, cfg)
		})
		exactNs = r.NsPerHome
	}
	if surfNs > 0 {
		rep.SurfaceSpeedup = exactNs / surfNs
	}

	// Million-home-sweep series: the 24-bin/10 ms workload the coarse
	// tier is certified for, exact vs coarse, as a homes/sec trajectory.
	// Honest accounting: the batched struct-of-arrays kernel is roughly
	// neutral on the exact tier (its win is layout + allocation
	// discipline, and the event simulation already dominated); the
	// headline gain comes from the coarse tier, which on the reference
	// single-core host lifts ~987 homes/sec (the pre-batching kernel at
	// this workload) to ~3.5× that. The anchor stride cannot stretch
	// further without breaking the certified occupancy bound, so the
	// ratio below is a physics ceiling, not a tuning artifact.
	{
		cfgE := sweepBenchConfig(200, false)
		rE := add("FleetSweep", cfgE.Homes, func(b *testing.B) { runFleetBench(b, cfgE) })
		cfgC := sweepBenchConfig(200, true)
		rC := add("FleetSweepCoarse", cfgC.Homes, func(b *testing.B) { runFleetBench(b, cfgC) })
		rep.SweepExactHPS = rE.HomesPerSec
		rep.SweepCoarseHPS = rC.HomesPerSec
		if rE.NsPerHome > 0 {
			rep.CoarseSpeedup = rE.NsPerHome / rC.NsPerHome
		}
		t.Logf("sweep: %.0f homes/s exact, %.0f homes/s coarse (%.1f× per home)",
			rep.SweepExactHPS, rep.SweepCoarseHPS, rep.CoarseSpeedup)
		if rep.CoarseSpeedup < 2.5 {
			t.Errorf("coarse per-home speedup %.1f× is below the 2.5× floor", rep.CoarseSpeedup)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_fleet.json: per-home %0.f ns (surface) vs %0.f ns (exact): %.1f× speedup",
		surfNs, exactNs, rep.SurfaceSpeedup)
	if rep.SurfaceSpeedup < 5 {
		t.Errorf("surface per-home speedup %.1f× is below the 5× acceptance bar", rep.SurfaceSpeedup)
	}
}
