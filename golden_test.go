// Golden-run regression suite: pins the numeric output of the
// powifi-bench tables/figures and a fixed-seed fleet run against
// committed golden files, so any drift in the reproduced paper numbers —
// from solver changes, surface retuning, or refactors — fails CI
// instead of slipping through.
//
// Regenerate after an intentional change with:
//
//	go test -run TestGolden -update .
//
// Comparison is numeric-aware: the non-numeric skeleton must match
// exactly, and every number must agree within goldenRelTol. The
// simulator is bit-deterministic on a given platform, so regenerated
// goldens are stable there; the tolerance absorbs formatting-level
// noise only. Note the goldens are pinned on linux/amd64 (the CI
// platform): last-ulp libm differences on other architectures can
// amplify through discrete decisions (boot thresholds, grid-refinement
// accept/reject) beyond any tolerance, so regenerate on the CI platform
// if a cross-platform diff appears.
package powifi_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/lifecycle"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

const (
	goldenDir    = "testdata/golden"
	goldenRelTol = 1e-9  // documented numeric drift tolerance
	goldenAbsTol = 1e-12 // for values at zero
)

var numberRE = regexp.MustCompile(`[-+]?\d+(\.\d+)?([eE][-+]?\d+)?`)

// compareGolden checks got against the named golden file (or rewrites it
// under -update).
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name+".golden")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestGolden -update .`): %v", path, err)
	}
	if err := diffNumeric(got, string(wantBytes)); err != nil {
		t.Errorf("%s drifted from golden: %v\n(regenerate intentionally with -update)", name, err)
	}
}

// diffNumeric compares two texts: identical non-numeric skeletons, and
// numbers equal within the documented tolerance.
func diffNumeric(got, want string) error {
	gotNums := numberRE.FindAllString(got, -1)
	wantNums := numberRE.FindAllString(want, -1)
	gotSkel := numberRE.ReplaceAllString(got, "#")
	wantSkel := numberRE.ReplaceAllString(want, "#")
	if gotSkel != wantSkel {
		return fmt.Errorf("non-numeric structure changed:\n--- got ---\n%s\n--- want ---\n%s",
			firstDiffContext(gotSkel, wantSkel), firstDiffContext(wantSkel, gotSkel))
	}
	if len(gotNums) != len(wantNums) {
		return fmt.Errorf("number count changed: %d vs %d", len(gotNums), len(wantNums))
	}
	for i := range gotNums {
		g, err1 := strconv.ParseFloat(gotNums[i], 64)
		w, err2 := strconv.ParseFloat(wantNums[i], 64)
		if err1 != nil || err2 != nil {
			if gotNums[i] != wantNums[i] {
				return fmt.Errorf("token %d: %q vs %q", i, gotNums[i], wantNums[i])
			}
			continue
		}
		if math.Abs(g-w) > math.Max(goldenRelTol*math.Abs(w), goldenAbsTol) {
			return fmt.Errorf("number %d drifted: got %v, want %v (|Δ|=%g > tol)",
				i, g, w, math.Abs(g-w))
		}
	}
	return nil
}

// firstDiffContext returns a few lines around the first difference.
func firstDiffContext(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			lo := i - 1
			if lo < 0 {
				lo = 0
			}
			hi := i + 2
			if hi > len(la) {
				hi = len(la)
			}
			return fmt.Sprintf("(line %d) %s", i+1, strings.Join(la[lo:hi], "\n"))
		}
	}
	if len(la) != len(lb) {
		return fmt.Sprintf("(line count %d vs %d)", len(la), len(lb))
	}
	return "(no line-level diff; whitespace?)"
}

// goldenExperiments are the powifi-bench tables/figures pinned by the
// suite. The quick (non -full) configuration is used — the same tables
// the CLI prints by default. The slow set exercises the deployment and
// device sweeps and is skipped under -short.
var goldenExperiments = []struct {
	id   string
	slow bool
}{
	{id: "fig1"},
	{id: "fig5"},
	{id: "fig9"},
	{id: "fig13"},
	{id: "fig16"},
	{id: "table1"},
	{id: "fig10", slow: true},
	{id: "fig11", slow: true},
	{id: "fig12", slow: true},
	{id: "fig14", slow: true},
	{id: "fig15", slow: true},
}

func TestGoldenBenchTables(t *testing.T) {
	for _, exp := range goldenExperiments {
		t.Run(exp.id, func(t *testing.T) {
			if exp.slow && testing.Short() {
				t.Skip("slow experiment; run without -short")
			}
			var buf bytes.Buffer
			if !experiments.Run(exp.id, &buf, true) {
				t.Fatalf("unknown experiment %q", exp.id)
			}
			compareGolden(t, "bench_"+exp.id, buf.String())
		})
	}
}

// goldenFleetConfig is the fixed-seed fleet run the suite pins: small
// enough for CI, large enough to exercise synthesis, sharding, sketches
// and both output serializations.
func goldenFleetConfig() fleet.Config {
	return fleet.Config{
		Homes:    6,
		Seed:     7,
		Workers:  2, // worker count never affects output; fixed for wall-clock sanity
		Hours:    2,
		BinWidth: 30 * time.Minute,
		Window:   2 * time.Millisecond,
	}
}

func TestGoldenFleetRun(t *testing.T) {
	res, err := fleet.Run(context.Background(), goldenFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	var text, js bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "fleet_text", text.String())
	compareGolden(t, "fleet_json", js.String())
}

// goldenLifecycleConfig pins the device-lifecycle engine: the golden
// fleet with a mixed device population spanning every archetype, run
// over enough bins for cold starts, frames and charge trajectories to
// show up in the aggregates.
func goldenLifecycleConfig() fleet.Config {
	cfg := goldenFleetConfig()
	cfg.Homes = 8
	cfg.Hours = 3
	cfg.Population = fleet.DefaultPopulation()
	var m lifecycle.Mix
	m[lifecycle.TempSensor] = 0.3
	m[lifecycle.RechargingTemp] = 0.15
	m[lifecycle.Camera] = 0.2
	m[lifecycle.Jawbone] = 0.15
	m[lifecycle.LiIon] = 0.1
	m[lifecycle.NiMH] = 0.1
	cfg.Population.Devices = m
	return cfg
}

func TestGoldenFleetLifecycleRun(t *testing.T) {
	res, err := fleet.Run(context.Background(), goldenLifecycleConfig())
	if err != nil {
		t.Fatal(err)
	}
	var text, js bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "fleet_lifecycle_text", text.String())
	compareGolden(t, "fleet_lifecycle_json", js.String())
}
