// Smarthome: replay one of the paper's §6 home deployments through the
// public Scenario SDK.
//
// A PoWiFi router replaces the home's router for a simulated day: the
// occupants' devices and the neighbours' networks load the channels on
// a diurnal schedule, and a battery-free temperature sensor sits ten
// feet away. The example streams the day bin by bin with the Bins
// iterator (printing the per-channel occupancy every two hours — the
// Fig. 14/15 story for a single home), then runs the same day again
// with the stateful device-lifecycle engine attached: the battery-free
// sensor's boot/outage timeline, a duty-cycled camera accumulating
// frames on its coin cell, and the Jawbone tracker charging on the
// router's USB perch.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	powifi "repro"
)

func main() {
	ctx := context.Background()
	home := powifi.PaperHomes()[0] // 2 users, 6 devices, 17 neighboring APs
	fmt.Printf("deploying in home %d: %d users, %d devices, %d neighboring APs\n\n",
		home.ID, home.Users, home.Devices, home.NeighborAPs)

	mix, err := powifi.ParseDeviceMix("temp=1,camera=1,jawbone=1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sc, err := powifi.NewScenario(
		powifi.WithHome(home),
		powifi.WithSensorDistance(10),
		powifi.WithHorizon(24*time.Hour),
		powifi.WithBinWidth(15*time.Minute),
		powifi.WithWindow(400*time.Millisecond),
		powifi.WithDevices(mix),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Stream the day: one BinSample per 15-minute bin, printed every
	// two hours. Breaking out of the loop would stop the simulation.
	fmt.Println("hour  ch1     ch6     ch11    cumulative  sensor")
	for s, err := range sc.Bins(ctx) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if s.Bin%8 != 0 {
			continue
		}
		fmt.Printf("%4.0f  %5.1f%%  %5.1f%%  %5.1f%%  %9.1f%%  %5.2f reads/s\n",
			s.HourOfDay, s.Occupancy[0]*100, s.Occupancy[1]*100, s.Occupancy[2]*100,
			s.CumulativePct, s.SensorRate)
	}

	// The reduced report: the same day through Run, with the lifecycle
	// devices riding the bins.
	rep, err := sc.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := rep.Home
	fmt.Printf("\nmean cumulative occupancy: %.1f%% (paper range across homes: 78-127%%)\n", h.MeanCumulativePct)
	fmt.Printf("sensor update rate at 10 ft: mean %.2f reads/s (silent bins: %d/%d)\n",
		h.MeanUpdateRateHz, h.SilentBins, h.Bins)

	fmt.Println("\ndevice lifecycles over the same day:")
	for _, d := range h.Devices {
		switch d.Kind {
		case "temp":
			first := "never"
			if d.FirstUpdateS != nil {
				first = fmt.Sprintf("%.1f s", *d.FirstUpdateS)
			}
			fmt.Printf("  temp sensor:  first update %s, %.0f updates, outage %.1f%% of the day\n",
				first, d.Updates, d.OutagePct)
		case "camera":
			first := "never"
			if d.FirstUpdateS != nil {
				first = fmt.Sprintf("after %.0f min", *d.FirstUpdateS/60)
			}
			fmt.Printf("  camera:       %d frames on the coin cell (first %s), soc ends at %.2f%%\n",
				d.Frames, first, *d.FinalSoCPct)
		default:
			fmt.Printf("  jawbone UP24: charged to %.0f%% on the USB perch (outage %.1f%%)\n",
				*d.FinalSoCPct, d.OutagePct)
		}
	}
}
