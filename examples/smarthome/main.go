// Smarthome: replay one of the paper's §6 home deployments.
//
// A PoWiFi router replaces the home's router for a simulated day: the
// occupants' devices and the neighbours' networks load the channels on a
// diurnal schedule, and a battery-free temperature sensor sits ten feet
// away. The example prints the per-channel occupancy at a few times of
// day and the sensor's update-rate distribution — the Fig. 14/15 story
// for a single home — and then runs the stateful device-lifecycle
// engine over the same day: the battery-free sensor's boot/outage
// timeline, a duty-cycled camera accumulating frames on its coin cell,
// and the Jawbone tracker charging on the router's USB port.
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/deploy"
	"repro/internal/lifecycle"
	"repro/internal/phy"
	"repro/internal/stats"
)

func main() {
	home := deploy.PaperHomes()[0] // 2 users, 6 devices, 17 neighboring APs
	fmt.Printf("deploying in home %d: %d users, %d devices, %d neighboring APs\n\n",
		home.ID, home.Users, home.Devices, home.NeighborAPs)

	opts := deploy.Options{
		BinWidth:         15 * time.Minute,
		Window:           400 * time.Millisecond,
		Hours:            24,
		SensorDistanceFt: 10,
	}
	res := deploy.Run(home, opts)

	fmt.Println("hour  ch1     ch6     ch11    cumulative  sensor")
	for i := 0; i < len(res.Cumulative); i += 8 { // every 2 hours
		fmt.Printf("%4.0f  %5.1f%%  %5.1f%%  %5.1f%%  %9.1f%%  %5.2f reads/s\n",
			res.HourOfDay[i],
			res.Occupancy[phy.Channel1][i],
			res.Occupancy[phy.Channel6][i],
			res.Occupancy[phy.Channel11][i],
			res.Cumulative[i],
			res.SensorRates[i])
	}

	cdf := stats.NewCDF(res.SensorRates)
	fmt.Printf("\nmean cumulative occupancy: %.1f%% (paper range across homes: 78-127%%)\n", res.MeanCumulative())
	fmt.Printf("sensor update rate at 10 ft: p10 %.2f  median %.2f  p90 %.2f reads/s\n",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))

	// The same day through the lifecycle engine: one deployment pass
	// drives the whole household of stateful devices via the visitor
	// run mode.
	devs := lifecycle.Group{
		lifecycle.NewDevice(lifecycle.TempSensor, lifecycle.Policy{}),
		lifecycle.NewDevice(lifecycle.Camera, lifecycle.Policy{}),
		lifecycle.NewDevice(lifecycle.Jawbone, lifecycle.Policy{}),
	}
	devs.Begin(opts.SensorDistanceFt, opts.BinWidth)
	deploy.RunVisitor(home, opts, devs)

	fmt.Println("\ndevice lifecycles over the same day:")
	for _, d := range devs {
		m := d.Metrics()
		switch {
		case d.Kind == lifecycle.TempSensor:
			first := "never"
			if !math.IsInf(m.FirstUpdateS, 1) {
				first = fmt.Sprintf("%.1f s", m.FirstUpdateS)
			}
			fmt.Printf("  temp sensor:  first update %s, %.0f updates, outage %.1f%% of the day\n",
				first, m.Updates, 100*m.OutageFraction())
		case d.Kind == lifecycle.Camera:
			first := "never"
			if !math.IsInf(m.FirstUpdateS, 1) {
				first = fmt.Sprintf("after %.0f min", m.FirstUpdateS/60)
			}
			fmt.Printf("  camera:       %d frames on the coin cell (first %s), soc ends at %.2f%%\n",
				m.Frames, first, m.FinalSoC*100)
		default:
			fmt.Printf("  jawbone UP24: charged to %.0f%% on the USB perch (outage %.1f%%)\n",
				m.FinalSoC*100, 100*m.OutageFraction())
		}
	}
}
