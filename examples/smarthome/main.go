// Smarthome: replay one of the paper's §6 home deployments.
//
// A PoWiFi router replaces the home's router for a simulated day: the
// occupants' devices and the neighbours' networks load the channels on a
// diurnal schedule, and a battery-free temperature sensor sits ten feet
// away. The example prints the per-channel occupancy at a few times of
// day and the sensor's update-rate distribution — the Fig. 14/15 story
// for a single home.
package main

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/phy"
	"repro/internal/stats"
)

func main() {
	home := deploy.PaperHomes()[0] // 2 users, 6 devices, 17 neighboring APs
	fmt.Printf("deploying in home %d: %d users, %d devices, %d neighboring APs\n\n",
		home.ID, home.Users, home.Devices, home.NeighborAPs)

	res := deploy.Run(home, deploy.Options{
		BinWidth:         15 * time.Minute,
		Window:           400 * time.Millisecond,
		Hours:            24,
		SensorDistanceFt: 10,
	})

	fmt.Println("hour  ch1     ch6     ch11    cumulative  sensor")
	for i := 0; i < len(res.Cumulative); i += 8 { // every 2 hours
		fmt.Printf("%4.0f  %5.1f%%  %5.1f%%  %5.1f%%  %9.1f%%  %5.2f reads/s\n",
			res.HourOfDay[i],
			res.Occupancy[phy.Channel1][i],
			res.Occupancy[phy.Channel6][i],
			res.Occupancy[phy.Channel11][i],
			res.Cumulative[i],
			res.SensorRates[i])
	}

	cdf := stats.NewCDF(res.SensorRates)
	fmt.Printf("\nmean cumulative occupancy: %.1f%% (paper range across homes: 78-127%%)\n", res.MeanCumulative())
	fmt.Printf("sensor update rate at 10 ft: p10 %.2f  median %.2f  p90 %.2f reads/s\n",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
}
