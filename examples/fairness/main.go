// Fairness: the Fig. 8 neighbor study as a runnable example — what
// happens to the network next door when your router starts transmitting
// power packets?
//
// A neighboring router-client pair runs a saturating UDP download on
// channel 1 while our router injects power traffic under three policies.
// PoWiFi's 54 Mbps packets yield the channel quickly, so the neighbor
// does better than a strict equal-share split; BlindUDP's 1 Mbps packets
// starve it.
package main

import (
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/phy"
	"repro/internal/router"
)

func main() {
	rates := []phy.Rate{
		phy.Rate6Mbps, phy.Rate12Mbps, phy.Rate24Mbps, phy.Rate36Mbps, phy.Rate54Mbps,
	}
	res := experiments.RunFig8(rates, 2*time.Second, 99)

	fmt.Println("neighbor bit rate -> achieved UDP throughput (Mbps)")
	fmt.Println("rate     BlindUDP  EqualShare  PoWiFi")
	for i, rate := range rates {
		fmt.Printf("%-7v  %8.2f  %10.2f  %6.2f\n", rate,
			res.AchievedMbps[router.BlindUDP][i],
			res.AchievedMbps[router.EqualShare][i],
			res.AchievedMbps[router.PoWiFi][i])
	}
	fmt.Println("\nPoWiFi >= EqualShare at every rate: better-than-equal-share fairness (§4.1d).")
}
