// Fairness: the Fig. 8 neighbor study as a runnable example — what
// happens to the network next door when your router starts transmitting
// power packets?
//
// A neighboring router-client pair runs a saturating UDP download on
// channel 1 while our router injects power traffic under three policies.
// PoWiFi's 54 Mbps packets yield the channel quickly, so the neighbor
// does better than a strict equal-share split; BlindUDP's 1 Mbps packets
// starve it. The experiment runs through the public SDK's experiment
// scenario mode.
package main

import (
	"context"
	"fmt"
	"os"

	powifi "repro"
)

func main() {
	sc, err := powifi.NewScenario(powifi.WithExperiment("fig8"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("neighbor throughput under power-packet injection (Fig. 8):")
	fmt.Println()
	fmt.Print(rep.Experiment.Output)
	fmt.Println("\nPoWiFi >= EqualShare at every rate: better-than-equal-share fairness (§4.1d).")
}
