// Quickstart: power a battery-free temperature sensor from a simulated
// PoWiFi router ten feet away, through the public Scenario SDK.
//
// The scenario runs the full chain the paper demonstrates — the router
// injects power packets on channels 1/6/11 under a home's real traffic
// load, a monitor measures the occupancy it achieves, and the
// harvester + sensor models convert the resulting incident RF power
// into sensor readings per second — and reduces it into the unified
// Report.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	powifi "repro"
)

func main() {
	// Home 1 of the paper's Table 1 (2 users, 6 devices, 17 neighboring
	// APs), replayed for two hours with the sensor at the paper's 10 ft.
	sc, err := powifi.NewScenario(
		powifi.WithHome(powifi.PaperHomes()[0]),
		powifi.WithSensorDistance(10),
		powifi.WithHorizon(2*time.Hour),
		powifi.WithBinWidth(15*time.Minute),
		powifi.WithWindow(400*time.Millisecond),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep, err := sc.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	h := rep.Home
	for _, ch := range []string{"ch1", "ch6", "ch11"} {
		fmt.Printf("%-5s occupancy: %5.1f%%\n", ch, h.ChannelOccupancyPct[ch])
	}
	fmt.Printf("cumulative:     %5.1f%%\n\n", h.MeanCumulativePct)

	fmt.Printf("battery-free temperature sensor at %.0f ft: %.2f reads/s\n",
		h.SensorFt, h.MeanUpdateRateHz)
	if h.MeanUpdateRateHz > 0 {
		fmt.Printf("one reading every %v, harvesting %.1f µW\n",
			time.Duration(float64(time.Second)/h.MeanUpdateRateHz).Round(time.Millisecond),
			h.MeanHarvestUW)
	}
}
