// Quickstart: power a battery-free temperature sensor from a simulated
// PoWiFi router ten feet away.
//
// The example runs the full chain the paper demonstrates: the router
// injects power packets on channels 1/6/11, a monitor measures the
// occupancy it achieves, and the harvester + sensor models convert the
// resulting incident RF power into sensor readings per second.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/medium"
	"repro/internal/monitor"
	"repro/internal/phy"
	"repro/internal/router"
)

func main() {
	// 1. Build the three 2.4 GHz channels and a PoWiFi router.
	sched := eventsim.New()
	channels := make(map[phy.Channel]*medium.Channel, 3)
	for _, chNum := range phy.PoWiFiChannels {
		channels[chNum] = medium.NewChannel(chNum, sched)
	}
	rt := router.New(router.DefaultConfig(), sched, channels, 100, 42)

	// 2. Watch the router's occupancy, as the paper does with airmon-ng.
	monitors := make(map[phy.Channel]*monitor.Monitor, 3)
	for _, chNum := range phy.PoWiFiChannels {
		monitors[chNum] = monitor.New(channels[chNum], 500*time.Millisecond,
			rt.Radio(chNum).MAC.StationID())
	}

	// 3. Run five simulated seconds of power injection.
	rt.Start()
	sched.RunUntil(5 * time.Second)

	occupancy := make(map[phy.Channel]float64, 3)
	cumulative := 0.0
	for _, chNum := range phy.PoWiFiChannels {
		occupancy[chNum] = monitors[chNum].MeanOccupancy()
		cumulative += occupancy[chNum]
		fmt.Printf("%-5v occupancy: %5.1f%%\n", chNum, occupancy[chNum]*100)
	}
	fmt.Printf("cumulative:     %5.1f%%\n\n", cumulative*100)

	// 4. Place a battery-free temperature sensor ten feet away.
	sensor := core.NewBatteryFreeTempSensor()
	link := core.PowerLink{
		TxPowerDBm: 30, TxGainDBi: 6, RxGainDBi: 2,
		DistanceFt: 10, Occupancy: core.OccupancyFromMap(occupancy),
	}
	rate := sensor.UpdateRate(link)
	fmt.Printf("battery-free temperature sensor at 10 ft: %.1f reads/s\n", rate)
	fmt.Printf("one reading every %v\n", sensor.Sensor.TimeBetweenReads(sensor.NetHarvestedW(link)).Round(time.Millisecond))
}
