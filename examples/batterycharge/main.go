// Batterycharge: recharge real batteries from Wi-Fi, as in §5 and §8(a).
//
// Three scenarios: the NiMH pack behind the battery-recharging
// temperature sensor, the Li-Ion coin cell behind the recharging camera,
// and the Jawbone UP24 activity tracker sitting next to the router on the
// USB charger. Each battery is charged two ways that cannot diverge by
// construction: the constant-power shortcut (core.BatteryChargeTime, a
// thin wrapper over the shared ledger primitive) and the stateful
// device-lifecycle engine (internal/lifecycle), which integrates the
// same ledger bin by bin with self-discharge and charge-acceptance
// applied.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/experiments"
	"repro/internal/harvester"
	"repro/internal/lifecycle"
)

// chargeFlat drives a lifecycle charger device over a flat-occupancy
// schedule until its battery fills (or the horizon runs out) and
// returns its final metrics. cumulative is spread evenly over the
// three PoWiFi channels, exactly as core.PoWiFiLink does.
func chargeFlat(dev *lifecycle.Device, distanceFt, cumulative float64, bin time.Duration, horizon time.Duration) lifecycle.Metrics {
	dev.Begin(distanceFt, bin)
	per := cumulative / 3
	s := deploy.BinSample{Occupancy: [3]float64{per, per, per}}
	for i := 0; i < int(horizon/bin); i++ {
		s.Bin = i
		dev.VisitBin(s)
	}
	return dev.Metrics()
}

func main() {
	const occupancy = 0.913

	// NiMH pack on the recharging temperature sensor at 10 feet.
	temp := core.NewRechargingTempSensor()
	link := core.PoWiFiLink(10, occupancy)
	net := temp.NetHarvestedW(link)
	fmt.Printf("NiMH 2xAAA pack at 10 ft: net %.1f µW while idle\n", net*1e6)
	day := core.BatteryChargeTime(temp.Battery, 0.50, 0.51, net)
	fmt.Printf("  topping up 1%% of the pack takes %.1f days\n", day.Hours()/24)
	fmt.Printf("  -> at 10 ft the pack sustains %.2f reads/s forever (energy-neutral)\n\n",
		temp.UpdateRate(link))

	// Li-Ion coin cell on the recharging camera at 15 feet.
	cam := core.NewRechargingCamera()
	camLink := core.PoWiFiLink(15, 0.909)
	camNet := cam.NetHarvestedW(camLink)
	fmt.Printf("Li-Ion MS412FE coin cell at 15 ft: net %.1f µW\n", camNet*1e6)
	full := core.BatteryChargeTime(cam.Battery, 0, 1, camNet)
	fmt.Printf("  charging the 1 mAh cell from empty takes %.1f hours (constant-power shortcut)\n", full.Hours())
	// The same cell through the stateful engine: the bq25570 charger
	// chain at 15 ft, integrated per 15-minute bin with self-discharge.
	li := lifecycle.NewDevice(lifecycle.LiIon, lifecycle.Policy{})
	m := chargeFlat(li, 15, 0.909, 15*time.Minute, 96*time.Hour)
	fmt.Printf("  lifecycle ledger: %.0f%% charged after %.0f h of flat occupancy (state %v)\n",
		m.FinalSoC*100, m.TotalS/3600, li.State())
	fmt.Printf("  -> one photo every %.1f min, energy-neutral\n\n",
		cam.InterFrameTime(camLink).Minutes())

	// Jawbone UP24 on the USB charger, 6 cm from the router (§8a).
	res := experiments.RunFig16(6, 150*time.Minute)
	fmt.Printf("Jawbone UP24 on the USB charger (6 cm):\n")
	fmt.Printf("  average charge current %.2f mA (paper: 2.3 mA)\n", res.ChargeCurrentMA)
	fmt.Printf("  %.0f%% -> %.0f%% charged in %v (paper: 0%% -> 41%% in 2.5 h)\n",
		res.StartSoC*100, res.EndSoC*100, res.Duration)
	// The lifecycle Jawbone archetype runs the same §8(a) chain (the
	// charger keeps its 6 cm USB perch regardless of the distance the
	// home placed its sensor at).
	jb := lifecycle.NewDevice(lifecycle.Jawbone, lifecycle.Policy{})
	jm := chargeFlat(jb, 10, 0.95, time.Minute, 150*time.Minute)
	fmt.Printf("  lifecycle ledger: %.0f%% charged after the same 2.5 h\n", jm.FinalSoC*100)

	// Show the battery abstraction directly.
	pack := harvester.NewNiMHPack()
	pack.SetSoC(0.25)
	fmt.Printf("\nbattery state: %v (%.0f J stored of %.0f J)\n",
		pack, pack.StoredEnergy(), pack.CapacityJ)
}
