// Batterycharge: recharge real batteries from Wi-Fi, as in §5 and §8(a),
// through the public Scenario SDK.
//
// Three storage elements charge over a real home's day via the
// stateful device-lifecycle engine (WithDevices on a single-home
// scenario): the NiMH pack behind the battery-recharging temperature
// sensor, the Li-Ion coin cell behind the recharging camera, and the
// Jawbone UP24 activity tracker sitting next to the router on the USB
// charger. The §8(a) USB-charger experiment (Fig. 16) then reproduces
// the paper's own headline numbers for the Jawbone.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	powifi "repro"
)

func main() {
	ctx := context.Background()

	// A high-occupancy household with the sensors close in: Table 1's
	// home 1 with the placement at 8 ft, run for 72 hours so the slow
	// chemistries make visible progress.
	mix, err := powifi.ParseDeviceMix("rtemp=1,liion=1,nimh=1,jawbone=1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sc, err := powifi.NewScenario(
		powifi.WithHome(powifi.PaperHomes()[0]),
		powifi.WithSensorDistance(8),
		powifi.WithHorizon(72*time.Hour),
		powifi.WithBinWidth(time.Hour),
		powifi.WithWindow(50*time.Millisecond),
		powifi.WithDevices(mix),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := sc.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("charging from Wi-Fi for %.0f h at %.0f ft (mean occupancy %.1f%%):\n\n",
		rep.Home.Hours, rep.Home.SensorFt, rep.Home.MeanCumulativePct)
	for _, d := range rep.Home.Devices {
		line := fmt.Sprintf("  %-8s", d.Kind)
		if d.FinalSoCPct != nil {
			line += fmt.Sprintf(" soc %6.2f%%", *d.FinalSoCPct)
		}
		if d.TimeToFullS != nil {
			line += fmt.Sprintf("  full after %.1f h", *d.TimeToFullS/3600)
		}
		if d.Updates > 0 {
			line += fmt.Sprintf("  (%.0f sensor reads along the way)", d.Updates)
		}
		fmt.Println(line)
	}

	// The paper's own §8(a) demonstration: the Jawbone UP24 on the USB
	// charger 6 cm from the router (paper: 2.3 mA, 0% -> 41% in 2.5 h).
	fig16, err := powifi.NewScenario(powifi.WithExperiment("fig16"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err = fig16.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nthe paper's USB-charger experiment (Fig. 16):")
	fmt.Print(rep.Experiment.Output)
}
