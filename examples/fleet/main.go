// Fleet-scale deployment scenario: the paper's six-home study (§6)
// generalized to a 1000-home population. Households are synthesized
// from parameter distributions (occupants, devices, neighbor density,
// diurnal phase, sensor placement), every home runs the same packet-
// level single-home runner as the paper study, and the results reduce
// to population statistics: the occupancy CDF generalizing Fig. 14, the
// harvested-power distribution, and sensor update latency tails
// generalizing Fig. 15.
//
// The run shards across all CPUs and takes a few minutes of wall clock
// per thousand homes per core; pass a smaller -homes to sample faster.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	powifi "repro"
	"repro/internal/fleet"
)

func main() {
	homes := flag.Int("homes", 1000, "fleet size")
	flag.Parse()

	cfg := fleet.DefaultConfig()
	cfg.Homes = *homes
	cfg.Seed = 7

	fmt.Printf("simulating %d homes x %.0f h (bin %v, window %v)...\n",
		cfg.Homes, cfg.Hours, cfg.BinWidth, cfg.Window)
	start := time.Now()
	res, err := powifi.RunFleet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done in %v with %d workers\n\n",
		time.Since(start).Round(time.Second), res.Config.Workers)

	res.WriteText(os.Stdout)

	s := res.Summarize()
	fmt.Printf("\nThe paper's six homes reported 78-127%% mean cumulative occupancy;\n")
	fmt.Printf("this population spans [%.0f%%, %.0f%%] with p50 %.0f%% across %d homes.\n",
		s.HomeOccupancyPct.Min, s.HomeOccupancyPct.Max, s.HomeOccupancyPct.P50, s.Homes)
}
