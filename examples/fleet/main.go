// Fleet-scale deployment scenario: the paper's six-home study (§6)
// generalized to a 1000-home population through the public Scenario
// SDK. Households are synthesized from parameter distributions
// (occupants, devices, neighbor density, diurnal phase, sensor
// placement), every home runs the same packet-level single-home runner
// as the paper study, and the results reduce to population statistics:
// the occupancy CDF generalizing Fig. 14, the harvested-power
// distribution, and sensor update latency tails generalizing Fig. 15.
//
// The run shards across all CPUs (bit-for-bit identical at any worker
// count), reports progress as homes complete, and cancels cleanly on
// interrupt; pass a smaller -homes to sample faster.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	powifi "repro"
)

func main() {
	homes := flag.Int("homes", 1000, "fleet size")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	lastPct := -1
	sc, err := powifi.NewScenario(
		powifi.WithHomes(*homes),
		powifi.WithSeed(7),
		powifi.WithProgress(func(done, total int) {
			if pct := done * 100 / total; pct/10 > lastPct/10 {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "\r%3d%% (%d/%d homes)", pct, done, total)
			}
		}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("simulating %d homes (seed 7, 24 h x 1 h bins)...\n", *homes)
	start := time.Now()
	rep, err := sc.Run(ctx)
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Second))

	rep.WriteText(os.Stdout)

	s := rep.Fleet
	fmt.Printf("\nThe paper's six homes reported 78-127%% mean cumulative occupancy;\n")
	fmt.Printf("this population spans [%.0f%%, %.0f%%] with p50 %.0f%% across %d homes.\n",
		s.HomeOccupancyPct.Min, s.HomeOccupancyPct.Max, s.HomeOccupancyPct.P50, s.Homes)
}
