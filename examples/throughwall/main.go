// Throughwall: the paper's Fig. 13 scenario — a battery-free camera left
// behind a wall, five feet from the PoWiFi router, photographing without
// any battery to replace.
//
// The example sweeps the four wall materials of §5.2 and, for the
// double sheet-rock case, sweeps distance to find where the camera stops
// working.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rf"
)

func main() {
	camera := core.NewBatteryFreeCamera()
	const occupancy = 0.909 // measured cumulative occupancy in §5.2

	fmt.Println("battery-free camera, 5 ft from the router:")
	fmt.Println("material      attenuation  inter-frame")
	walls := []rf.WallMaterial{
		rf.NoWall, rf.WoodenDoor, rf.GlassDoublePane, rf.HollowWall, rf.DoubleSheetrock,
	}
	for _, wall := range walls {
		link := core.PoWiFiLink(5, occupancy)
		link.Wall = wall
		ift := camera.InterFrameTime(link)
		fmt.Printf("%-12s  %8.1f dB  %8.1f min\n", wall, wall.AttenuationDB(), ift.Minutes())
	}

	fmt.Println("\nrange behind double sheet-rock:")
	for d := 2.0; d <= 16; d += 2 {
		link := core.PoWiFiLink(d, occupancy)
		link.Wall = rf.DoubleSheetrock
		ift := camera.InterFrameTime(link)
		if ift > 24*time.Hour {
			fmt.Printf("%4.0f ft: out of range\n", d)
			continue
		}
		fmt.Printf("%4.0f ft: one frame every %.1f min\n", d, ift.Minutes())
	}
}
