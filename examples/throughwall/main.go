// Throughwall: the paper's Fig. 13 scenario — a battery-free camera left
// behind a wall, five feet from the PoWiFi router, photographing without
// any battery to replace.
//
// The example regenerates the §5.2 wall-material sweep through the
// public SDK's experiment scenario mode, then runs the camera as a
// stateful lifecycle device over a real home's day (WithDevices on a
// single-home scenario) to show the frames actually accumulating.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	powifi "repro"
)

func main() {
	ctx := context.Background()

	// The Fig. 13 table: inter-frame time behind four wall materials.
	sc, err := powifi.NewScenario(powifi.WithExperiment("fig13"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := sc.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Experiment.Output)

	// The same camera as a stateful device: a day in Table 1's home 4,
	// five feet from the router, frames banked as the occupancy allows.
	mix, err := powifi.ParseDeviceMix("camera=1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	day, err := powifi.NewScenario(
		powifi.WithHome(powifi.PaperHomes()[3]),
		powifi.WithSensorDistance(5),
		powifi.WithHorizon(24*time.Hour),
		powifi.WithBinWidth(time.Hour),
		powifi.WithWindow(50*time.Millisecond),
		powifi.WithDevices(mix),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err = day.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cam := rep.Home.Devices[0]
	fmt.Printf("\na day at 5 ft in home %d (%.1f%% mean cumulative occupancy):\n",
		rep.Home.Home.ID, rep.Home.MeanCumulativePct)
	fmt.Printf("  %d frames captured on the coin cell, outage %.1f%% of the day\n",
		cam.Frames, cam.OutagePct)
	if cam.FinalSoCPct != nil {
		fmt.Printf("  battery ends the day at %.2f%% state of charge\n", *cam.FinalSoCPct)
	}
}
