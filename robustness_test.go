package powifi_test

// Facade-level coverage for the hardened-sweep surface: failure-policy
// options, partial results, fault injection, and the iterator
// early-break contract (workers drain; no goroutine leaks).

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

func TestScenarioFailureOptionConflicts(t *testing.T) {
	home := powifi.PaperHomes()[0]
	cases := []struct {
		name string
		opts []powifi.Option
		want string
	}{
		{"home+policy", []powifi.Option{powifi.WithHome(home), powifi.WithFailurePolicy(powifi.FailurePolicy{Skip: true})}, "only to fleet"},
		{"home+deadline", []powifi.Option{powifi.WithHome(home), powifi.WithDeadline(time.Second)}, "only to fleet"},
		{"home+faults", []powifi.Option{powifi.WithHome(home), powifi.WithFaults("home.panic@0")}, "only to fleet"},
		{"experiment+policy", []powifi.Option{powifi.WithExperiment("fig9"), powifi.WithFailurePolicy(powifi.FailurePolicy{Skip: true})}, "accepts only"},
		{"negative retry", []powifi.Option{powifi.WithFailurePolicy(powifi.FailurePolicy{Retry: -1})}, "need >= 0"},
		{"zero deadline", []powifi.Option{powifi.WithDeadline(0)}, "need > 0"},
		{"zero max-failed", []powifi.Option{powifi.WithMaxFailedHomes(0)}, "need > 0"},
		{"empty faults", []powifi.Option{powifi.WithFaults("")}, "empty fault spec"},
		{"bad faults site", []powifi.Option{powifi.WithFaults("reactor.meltdown@0")}, "unknown site"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := powifi.NewScenario(tc.opts...)
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioFailureJSONRoundTrip extends the declarative-form
// identity check to the failure options (WithFaults is execution state
// and deliberately has no JSON field).
func TestScenarioFailureJSONRoundTrip(t *testing.T) {
	sc := tinyFleet(t,
		powifi.WithFailurePolicy(powifi.FailurePolicy{Retry: 2, Skip: true}),
		powifi.WithMaxFailedHomes(4),
		powifi.WithDeadline(90*time.Second),
	)
	first, err := sc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"failure_policy":{"retry":2,"skip":true}`, `"max_failed":4`, `"deadline":"1m30s"`} {
		if !strings.Contains(string(first), want) {
			t.Errorf("marshaled scenario %s missing %s", first, want)
		}
	}
	loaded, err := powifi.LoadScenario(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := loaded.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not identity:\n first: %s\nsecond: %s", first, second)
	}
}

// TestScenarioPartialReport drives graceful degradation end to end
// through the facade: an expired WithDeadline yields a Report (not an
// error) whose fleet summary is marked partial with the documented
// reason.
func TestScenarioPartialReport(t *testing.T) {
	sc := tinyFleet(t, powifi.WithDeadline(time.Nanosecond))
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatalf("deadline run returned error %v, want partial report", err)
	}
	if rep.Fleet == nil || !rep.Fleet.Partial || rep.Fleet.PartialReason != powifi.PartialDeadline {
		t.Fatalf("fleet summary = %+v, want partial with reason %q", rep.Fleet, powifi.PartialDeadline)
	}
}

// TestScenarioFailFast pins the default failure policy through the
// facade: an injected home panic surfaces as a structured *HomeError.
func TestScenarioFailFast(t *testing.T) {
	sc := tinyFleet(t, powifi.WithFaults("home.panic@1"))
	_, err := sc.Run(context.Background())
	var he *powifi.HomeError
	if !errors.As(err, &he) {
		t.Fatalf("error %v is not a *HomeError", err)
	}
	if he.Index != 1 || he.Label != "fleet/home/1" {
		t.Fatalf("HomeError = %+v, want home 1", he)
	}
}

// waitGoroutines polls until the process is back to at most want live
// goroutines, failing the test if the count never settles — the leak
// detector for the iterator early-break tests.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still live, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHomesEarlyBreak certifies the fleet iterator's early-exit
// contract: breaking out of the loop stops the run — workers drain and
// exit cleanly, nothing further is yielded, and no goroutine outlives
// the loop.
func TestHomesEarlyBreak(t *testing.T) {
	// Warm process-wide lazy state (operating-point surface) so its
	// one-time goroutines don't read as leaks.
	if _, err := tinyFleet(t).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	sc := tinyFleet(t, powifi.WithHomes(16), powifi.WithWorkers(4))
	var got []int
	for r, err := range sc.Homes(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected iterator error: %v", err)
		}
		got = append(got, r.Index)
		if len(got) == 2 {
			break
		}
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("yielded homes %v, want [0 1] then stop", got)
	}
	waitGoroutines(t, base)
}

// TestBinsEarlyBreak is the single-home counterpart: breaking stops
// the simulation mid-home and leaves no goroutines behind.
func TestBinsEarlyBreak(t *testing.T) {
	if _, err := tinyHome(t).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	bins := 0
	for _, err := range tinyHome(t).Bins(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected iterator error: %v", err)
		}
		if bins++; bins == 1 {
			break
		}
	}
	if bins != 1 {
		t.Fatalf("yielded %d bins after break, want 1", bins)
	}
	waitGoroutines(t, base)
}
