package powifi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	powifi "repro"
)

// tinyFleet is a fleet scenario small enough for unit tests: 3 homes
// × 4 bins, fixed seed.
func tinyFleet(t *testing.T, extra ...powifi.Option) *powifi.Scenario {
	t.Helper()
	opts := append([]powifi.Option{
		powifi.WithHomes(3),
		powifi.WithSeed(9),
		powifi.WithWorkers(2),
		powifi.WithHorizon(2 * time.Hour),
		powifi.WithBinWidth(30 * time.Minute),
		powifi.WithWindow(2 * time.Millisecond),
	}, extra...)
	sc, err := powifi.NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// tinyHome is a single-home scenario: home 2 of Table 1 over 4 bins.
func tinyHome(t *testing.T, extra ...powifi.Option) *powifi.Scenario {
	t.Helper()
	opts := append([]powifi.Option{
		powifi.WithHome(powifi.PaperHomes()[1]),
		powifi.WithSensorDistance(10),
		powifi.WithHorizon(2 * time.Hour),
		powifi.WithBinWidth(30 * time.Minute),
		powifi.WithWindow(2 * time.Millisecond),
	}, extra...)
	sc, err := powifi.NewScenario(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioModes(t *testing.T) {
	if got := tinyFleet(t).Mode(); got != powifi.ModeFleet {
		t.Errorf("fleet scenario mode %q", got)
	}
	if got := tinyHome(t).Mode(); got != powifi.ModeHome {
		t.Errorf("home scenario mode %q", got)
	}
	sc, err := powifi.NewScenario(powifi.WithExperiment("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Mode(); got != powifi.ModeExperiment {
		t.Errorf("experiment scenario mode %q", got)
	}
}

func TestScenarioOptionConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []powifi.Option
		want string
	}{
		{"experiment+homes", []powifi.Option{powifi.WithExperiment("fig9"), powifi.WithHomes(5)}, "accepts only"},
		{"experiment+home", []powifi.Option{powifi.WithExperiment("fig9"), powifi.WithHome(powifi.PaperHomes()[0])}, "accepts only"},
		{"home+homes", []powifi.Option{powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithHomes(5)}, "conflicts"},
		{"home+workers", []powifi.Option{powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithWorkers(2)}, "conflicts"},
		{"fleet+sensor", []powifi.Option{powifi.WithHomes(5), powifi.WithSensorDistance(10)}, "requires WithHome"},
		{"fleet+full", []powifi.Option{powifi.WithHomes(5), powifi.WithFull(true)}, "experiment"},
		{"bad sensor", []powifi.Option{powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithSensorDistance(-1)}, "need > 0"},
		{"empty experiment", []powifi.Option{powifi.WithExperiment("")}, "empty experiment"},
		{"nil progress", []powifi.Option{powifi.WithProgress(nil)}, "nil progress"},
		{"zero device mix", []powifi.Option{powifi.WithDevices(powifi.DeviceMix{})}, "positive share"},
		{"home+coarse", []powifi.Option{powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithCoarse(true)}, "only to fleet"},
		{"experiment+coarse", []powifi.Option{powifi.WithExperiment("fig9"), powifi.WithCoarse(true)}, "accepts only"},
		{"home+checkpoint", []powifi.Option{powifi.WithHome(powifi.PaperHomes()[0]), powifi.WithCheckpoint("x.ckpt")}, "only to fleet"},
		{"experiment+checkpoint", []powifi.Option{powifi.WithExperiment("fig9"), powifi.WithCheckpoint("x.ckpt")}, "accepts only"},
		{"empty checkpoint", []powifi.Option{powifi.WithCheckpoint("")}, "empty checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := powifi.NewScenario(tc.opts...)
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioJSONRoundTrip is the identity check for the declarative
// form: LoadScenario(MarshalJSON(s)) must carry exactly the options of
// s — for every serializable option, including explicit zeros — so the
// re-marshaled bytes and the loaded scenario both match.
func TestScenarioJSONRoundTrip(t *testing.T) {
	pop := powifi.DefaultFleetPopulation()
	pop.MaxUsers = 6
	mix, err := powifi.ParseDeviceMix("temp=0.5,camera=0.3,jawbone=0.2")
	if err != nil {
		t.Fatal(err)
	}
	home := powifi.PaperHomes()[2]

	scenarios := map[string]*powifi.Scenario{}
	build := func(name string, opts ...powifi.Option) {
		sc, err := powifi.NewScenario(opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scenarios[name] = sc
	}
	// Every serializable option at once, per mode — including zero
	// values (seed 0, exact false) that must survive the round trip.
	build("fleet-all",
		powifi.WithHomes(42), powifi.WithSeed(0), powifi.WithWorkers(3),
		powifi.WithHorizon(36*time.Hour), powifi.WithBinWidth(20*time.Minute),
		powifi.WithWindow(5*time.Millisecond), powifi.WithExact(false),
		powifi.WithPopulation(pop), powifi.WithDevices(mix))
	build("fleet-coarse",
		powifi.WithHomes(7), powifi.WithCoarse(true))
	build("fleet-coarse-zero",
		powifi.WithHomes(7), powifi.WithCoarse(false)) // explicit zero survives
	build("home-all",
		powifi.WithHome(home), powifi.WithSensorDistance(7.5),
		powifi.WithSeed(11), powifi.WithHorizon(90*time.Minute),
		powifi.WithBinWidth(15*time.Minute), powifi.WithWindow(3*time.Millisecond),
		powifi.WithExact(true), powifi.WithDevices(mix))
	build("experiment-all",
		powifi.WithExperiment("fig13"), powifi.WithFull(true), powifi.WithExact(true))
	build("empty") // all defaults: still round-trips

	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(sc)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := powifi.LoadScenario(data)
			if err != nil {
				t.Fatalf("LoadScenario(%s): %v", data, err)
			}
			if !reflect.DeepEqual(sc, loaded) {
				t.Errorf("loaded scenario differs:\nwant %+v\ngot  %+v\njson %s", sc, loaded, data)
			}
			data2, err := json.Marshal(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Errorf("re-marshal not identical:\nfirst  %s\nsecond %s", data, data2)
			}
		})
	}
}

func TestLoadScenarioRejects(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"unknown field", `{"schema":1,"bogus":1}`, "bogus"},
		{"missing schema", `{"homes":5}`, "schema 0 unsupported"},
		{"future schema", `{"schema":99}`, "schema 99 unsupported"},
		{"bad duration", `{"schema":1,"horizon":"fortnight"}`, "horizon"},
		{"bad mix name", `{"schema":1,"devices":{"toaster":1}}`, "unknown device archetype"},
		{"mode mismatch", `{"schema":1,"mode":"home","homes":5}`, "resolve to"},
		{"conflicting options", `{"schema":1,"experiment":"fig9","homes":5}`, "accepts only"},
		{"trailing data", `{"schema":1}{"schema":1}`, "trailing"},
		{"not json", `homes=5`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := powifi.LoadScenario([]byte(tc.data))
			if err == nil {
				t.Fatalf("LoadScenario(%q) accepted", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioRunFleetReport pins the unified report envelope and its
// agreement with the deprecated RunFleet facade.
func TestScenarioRunFleetReport(t *testing.T) {
	rep, err := tinyFleet(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != powifi.ReportSchema || rep.Version != powifi.Version || rep.Mode != powifi.ModeFleet {
		t.Errorf("envelope wrong: %+v", rep)
	}
	if rep.Fleet == nil || rep.Home != nil || rep.Experiment != nil {
		t.Fatal("exactly the fleet section must be populated")
	}
	if rep.Fleet.TotalBins != 12 {
		t.Errorf("total bins = %d, want 12", rep.Fleet.TotalBins)
	}
	// The deprecated facade and the scenario run the same engine.
	legacy, err := powifi.RunFleet(powifi.FleetConfig{
		Homes: 3, Seed: 9, Workers: 2, Hours: 2,
		BinWidth: 30 * time.Minute, Window: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Summarize(), *rep.Fleet) {
		t.Error("Scenario.Run and RunFleet summaries diverged")
	}
}

// TestScenarioWorkerInvariance is the acceptance check on the new API:
// fleet results stay bit-for-bit worker-count invariant through
// Scenario.Run (serialized reports byte-identical) and through the
// Homes iterator (identical records in identical order).
func TestScenarioWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	runJSON := func(workers int) []byte {
		sc, err := powifi.NewScenario(
			powifi.WithHomes(3), powifi.WithSeed(9), powifi.WithWorkers(workers),
			powifi.WithHorizon(2*time.Hour), powifi.WithBinWidth(30*time.Minute),
			powifi.WithWindow(2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runJSON(1), runJSON(8)) {
		t.Error("Scenario.Run reports differ between 1 and 8 workers")
	}

	collect := func(workers int) []powifi.HomeRecord {
		sc, err := powifi.NewScenario(
			powifi.WithHomes(3), powifi.WithSeed(9), powifi.WithWorkers(workers),
			powifi.WithHorizon(2*time.Hour), powifi.WithBinWidth(30*time.Minute),
			powifi.WithWindow(2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		var recs []powifi.HomeRecord
		for r, err := range sc.Homes(ctx) {
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		return recs
	}
	serial, parallel := collect(1), collect(8)
	if len(serial) != 3 {
		t.Fatalf("got %d records, want 3", len(serial))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Homes records differ between 1 and 8 workers:\n1: %+v\n8: %+v", serial, parallel)
	}
}

// TestScenarioBins pins the single-home iterator: bins arrive in
// order, agree with Run's reduced report, and breaking out stops the
// stream.
func TestScenarioBins(t *testing.T) {
	ctx := context.Background()
	sc := tinyHome(t)
	var bins []powifi.BinSample
	for b, err := range sc.Bins(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		bins = append(bins, b)
	}
	if len(bins) != 4 {
		t.Fatalf("got %d bins, want 4", len(bins))
	}
	sumCum := 0.0
	for i, b := range bins {
		if b.Bin != i {
			t.Errorf("bin %d has index %d", i, b.Bin)
		}
		sumCum += b.CumulativePct
	}
	rep, err := sc.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Home.MeanCumulativePct, sumCum/4; got != want {
		t.Errorf("Run mean %v != Bins-derived mean %v", got, want)
	}
	if rep.Home.Bins != 4 {
		t.Errorf("report bins = %d, want 4", rep.Home.Bins)
	}

	// Early break: the iterator must just stop.
	n := 0
	for _, err := range sc.Bins(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if n != 2 {
		t.Errorf("broke after 2 bins but saw %d", n)
	}

	// Mode errors surface through the iterator, once.
	errs := 0
	for _, err := range tinyFleet(t).Bins(ctx) {
		if err == nil {
			t.Fatal("fleet scenario Bins yielded a sample")
		}
		errs++
	}
	if errs != 1 {
		t.Errorf("expected exactly one error, got %d", errs)
	}

	// A horizon Run would reject must error through the iterator too,
	// not read as an empty stream.
	short, err := powifi.NewScenario(
		powifi.WithHome(powifi.PaperHomes()[1]),
		powifi.WithHorizon(30*time.Second)) // shorter than the default 60 s bin
	if err != nil {
		t.Fatal(err)
	}
	saw := 0
	for _, err := range short.Bins(ctx) {
		saw++
		if err == nil || !strings.Contains(err.Error(), "shorter than one") {
			t.Errorf("short-horizon Bins yielded %v, want the horizon error", err)
		}
	}
	if saw != 1 {
		t.Errorf("short-horizon Bins yielded %d values, want exactly the error", saw)
	}
	if _, err := short.Run(ctx); err == nil || !strings.Contains(err.Error(), "shorter than one") {
		t.Errorf("short-horizon Run: %v", err)
	}
}

// TestScenarioCancellation pins ctx propagation through the facade:
// Run returns ctx.Err(), and the iterators yield it once.
func TestScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tinyFleet(t).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("fleet Run under cancelled ctx: %v", err)
	}
	if _, err := tinyHome(t).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("home Run under cancelled ctx: %v", err)
	}
	exp, err := powifi.NewScenario(powifi.WithExperiment("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("experiment Run under cancelled ctx: %v", err)
	}
	for _, err := range tinyHome(t).Bins(ctx) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Bins under cancelled ctx yielded %v", err)
		}
	}
	for _, err := range tinyFleet(t).Homes(ctx) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Homes under cancelled ctx yielded %v", err)
		}
	}
}

// TestScenarioHomeDevices pins the single-home lifecycle wiring: one
// device per positive share, canonical order, JSON-safe sections.
func TestScenarioHomeDevices(t *testing.T) {
	mix, err := powifi.ParseDeviceMix("temp=1,jawbone=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tinyHome(t, powifi.WithDevices(mix)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	devs := rep.Home.Devices
	if len(devs) != 2 || devs[0].Kind != "temp" || devs[1].Kind != "jawbone" {
		t.Fatalf("devices wrong: %+v", devs)
	}
	if devs[0].Bins != 4 {
		t.Errorf("temp device visited %d bins, want 4", devs[0].Bins)
	}
	if devs[0].FinalSoCPct != nil {
		t.Error("battery-free sensor reports a state of charge")
	}
	if devs[1].FinalSoCPct == nil {
		t.Error("jawbone charger missing its state of charge")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("lifecycle report not JSON-safe: %v", err)
	}
}

// TestScenarioCheckpointResume pins the SDK surface of checkpoint/
// resume: a run interrupted by breaking out of Homes leaves a
// checkpoint behind, a subsequent Run with the same scenario resumes
// from it and reports byte-identically to an uninterrupted run, and
// the completed run removes the file.
func TestScenarioCheckpointResume(t *testing.T) {
	baseline, err := tinyFleet(t, powifi.WithHomes(6)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	sc := tinyFleet(t, powifi.WithHomes(6), powifi.WithCheckpoint(path))
	seen := 0
	for _, err := range sc.Homes(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if seen++; seen == 2 {
			break
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("interrupted Homes left no checkpoint: %v", err)
	}

	resumed, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed report differs from uninterrupted run")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion (stat: %v)", err)
	}

	// The checkpoint path is execution state: the scenario's JSON form
	// must not carry it.
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "ckpt") {
		t.Errorf("scenario JSON leaked the checkpoint path: %s", data)
	}
}

// TestScenarioProgress pins the WithProgress callback on both run
// modes.
func TestScenarioProgress(t *testing.T) {
	var fleetProg []int
	sc := tinyFleet(t, powifi.WithProgress(func(done, total int) {
		if total != 3 {
			t.Errorf("fleet progress total = %d, want 3", total)
		}
		fleetProg = append(fleetProg, done)
	}))
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleetProg, []int{1, 2, 3}) {
		t.Errorf("fleet progress sequence %v", fleetProg)
	}

	var homeProg []int
	sc = tinyHome(t, powifi.WithProgress(func(done, total int) {
		if total != 4 {
			t.Errorf("home progress total = %d, want 4", total)
		}
		homeProg = append(homeProg, done)
	}))
	if _, err := sc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(homeProg, []int{1, 2, 3, 4}) {
		t.Errorf("home progress sequence %v", homeProg)
	}

	// The Bins iterator fires the same per-bin progress as Run.
	homeProg = nil
	for _, err := range sc.Bins(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(homeProg, []int{1, 2, 3, 4}) {
		t.Errorf("Bins progress sequence %v", homeProg)
	}
}

// TestScenarioExperimentMatchesRunExperiment pins the experiment mode
// against the deprecated facade function.
func TestScenarioExperimentMatchesRunExperiment(t *testing.T) {
	sc, err := powifi.NewScenario(powifi.WithExperiment("table1"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if !powifi.RunExperiment("table1", &buf, true) {
		t.Fatal("table1 runner missing")
	}
	if rep.Experiment == nil || rep.Experiment.Output != buf.String() {
		t.Error("experiment scenario output diverged from RunExperiment")
	}
	if _, err := powifi.NewScenario(powifi.WithExperiment("nope")); err != nil {
		t.Fatalf("id validation happens at Run, not construction: %v", err)
	}
	bad, _ := powifi.NewScenario(powifi.WithExperiment("nope"))
	if _, err := bad.Run(context.Background()); err == nil || !strings.Contains(err.Error(), `unknown experiment "nope"`) {
		t.Errorf("unknown experiment error: %v", err)
	}
}
